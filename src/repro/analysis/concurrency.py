"""Concurrency-sharing contracts: runtime decorators + static reader.

The multi-query era (ROADMAP item 1) needs a machine-checked answer to
"which objects may be shared between in-flight queries, and under what
lock?".  The vocabulary is deliberately tiny:

``@shared_across_queries``
    Class marker: instances may be reached by several queries at once.
    Every check-then-act sequence on its attributes must be inside a
    lock (RS012), and any attribute listed in a ``@guarded_by``
    contract must only be touched with its lock held (RS010).

``@guarded_by("_lock", "_frames", "stats")``
    Class decorator declaring that the listed attributes are protected
    by the lock stored in the first argument's attribute.  RS010
    verifies every read/write of a guarded attribute happens with the
    lock held on *all* CFG paths, exceptional ones included.

``@single_query``
    Escape hatch: instances are owned by exactly one query at a time
    (per-query stats, result accumulators).  Documents intent and
    turns off the sharing rules for the class.

``@requires_lock("_lock")``
    Method marker: callers must already hold the named lock.  RS010
    seeds the method's entry state with the lock and flags calls to
    such helpers from contexts where the lock is not held.

The decorators are runtime no-wrappers — they only attach dunder
attributes (``__repro_shared__``, ``__repro_guards__``,
``__repro_requires_lock__``) so annotated classes pay zero overhead
and the contracts are introspectable at runtime.  The static half
(:func:`module_contracts`) re-reads the same decorators from the AST,
by name, so the linter needs no imports to resolve.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple, TypeVar

_ClassT = TypeVar("_ClassT", bound=type)
_FuncT = TypeVar("_FuncT", bound=Callable[..., object])


# ---------------------------------------------------------------------------
# Runtime decorators
# ---------------------------------------------------------------------------


def shared_across_queries(cls: _ClassT) -> _ClassT:
    """Mark a class whose instances may be shared between queries."""
    cls.__repro_shared__ = True  # type: ignore[attr-defined]
    return cls


def single_query(cls: _ClassT) -> _ClassT:
    """Mark a class whose instances are owned by one query at a time."""
    cls.__repro_shared__ = False  # type: ignore[attr-defined]
    return cls


def guarded_by(lock_attr: str, *attrs: str) -> Callable[[_ClassT], _ClassT]:
    """Declare that ``attrs`` are protected by ``self.<lock_attr>``."""

    def decorate(cls: _ClassT) -> _ClassT:
        guards: Dict[str, str] = dict(getattr(cls, "__repro_guards__", {}))
        for attr in attrs:
            guards[attr] = lock_attr
        cls.__repro_guards__ = guards  # type: ignore[attr-defined]
        return cls

    return decorate


def requires_lock(lock_attr: str) -> Callable[[_FuncT], _FuncT]:
    """Declare that a method must be called with ``self.<lock_attr>`` held."""

    def decorate(func: _FuncT) -> _FuncT:
        func.__repro_requires_lock__ = lock_attr  # type: ignore[attr-defined]
        return func

    return decorate


# ---------------------------------------------------------------------------
# Static contract extraction (AST, by decorator name)
# ---------------------------------------------------------------------------


@dataclass
class ClassContract:
    """The sharing contract one class declares via decorators."""

    node: ast.ClassDef
    #: True = @shared_across_queries, False = @single_query, None = unmarked.
    shared: Optional[bool] = None
    #: guarded attribute name -> lock attribute name.
    guards: Dict[str, str] = field(default_factory=dict)
    #: method name -> lock attribute the caller must hold.
    requires: Dict[str, str] = field(default_factory=dict)

    @property
    def lock_attrs(self) -> Set[str]:
        return set(self.guards.values()) | set(self.requires.values())


def _decorator_name(node: ast.expr) -> str:
    """Trailing name of a decorator expression (``a.b.c`` -> ``c``)."""
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Attribute):
        return target.attr
    if isinstance(target, ast.Name):
        return target.id
    return ""


def _string_args(call: ast.Call) -> List[str]:
    out: List[str] = []
    for arg in call.args:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            out.append(arg.value)
    return out


def class_contract(node: ast.ClassDef) -> ClassContract:
    """Read one class's contract from its (and its methods') decorators."""
    contract = ClassContract(node=node)
    for decorator in node.decorator_list:
        name = _decorator_name(decorator)
        if name == "shared_across_queries":
            contract.shared = True
        elif name == "single_query":
            contract.shared = False
        elif name == "guarded_by" and isinstance(decorator, ast.Call):
            strings = _string_args(decorator)
            if len(strings) >= 2:
                lock = strings[0]
                for attr in strings[1:]:
                    contract.guards[attr] = lock
    for child in node.body:
        if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for decorator in child.decorator_list:
            if _decorator_name(decorator) == "requires_lock" and isinstance(
                decorator, ast.Call
            ):
                strings = _string_args(decorator)
                if strings:
                    contract.requires[child.name] = strings[0]
    return contract


def module_contracts(tree: ast.Module) -> Iterator[ClassContract]:
    """Contracts for every class in a module that declares one."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            contract = class_contract(node)
            if (
                contract.shared is not None
                or contract.guards
                or contract.requires
            ):
                yield contract
