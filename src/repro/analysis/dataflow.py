"""Generic forward/backward dataflow over :mod:`repro.analysis.cfg`.

A :class:`DataflowProblem` describes a gen/kill analysis over sets of
opaque facts (lock names, resource variables, ...).  :func:`solve`
runs a worklist to fixpoint and returns per-block *before*/*after*
values in **program order** regardless of direction — ``before[b]`` is
the value at the top of block ``b``, ``after[b]`` at the bottom.

Two meet flavours cover the rules shipped here:

* **may** (union): a fact holds if it holds on *some* path.  Interior
  initial value is the empty set.  Used by RS011 ("this resource may
  still be open").
* **must** (intersection): a fact holds only if it holds on *every*
  path.  Interior initial value is :data:`TOP` — the "unknown /
  everything" lattice top, the identity of intersection — so
  unreachable blocks never weaken a join.  Used by RS010 ("this lock
  is held however we got here").

Transfers default to ``(value - kill(block)) | gen(block)`` and may be
made *edge-sensitive* via :meth:`DataflowProblem.edge_value`: the value
propagated along one outgoing edge can differ from the block's after
value.  The rules use this to drop a gen along the ``exception`` edge
leaving the very block that generated it (a lock acquisition or
resource construction that raised never happened).

Fixpoint existence: transfers must be monotone (gen/kill always is).
The solver is deterministic and, per the classic Kildall result,
converges to the same fixpoint for any worklist order — a property the
test suite checks directly by shuffling the seed order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, FrozenSet, List, Optional, Sequence, Union

from repro.analysis.cfg import CFG, BasicBlock, Edge
from repro.exceptions import ConfigurationError

FORWARD = "forward"
BACKWARD = "backward"


class _Top:
    """Lattice top for must-analyses; identity of intersection."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TOP"


TOP = _Top()

Value = Union[_Top, FrozenSet[str]]


def is_top(value: Value) -> bool:
    """Whether a block value is the unreachable/unknown lattice top."""
    return value is TOP


class DataflowProblem:
    """One gen/kill analysis; subclass and override what you need."""

    #: :data:`FORWARD` or :data:`BACKWARD`.
    direction: str = FORWARD
    #: True for union meet (may-analysis), False for intersection
    #: (must-analysis).
    may: bool = True

    def boundary(self, cfg: CFG) -> FrozenSet[str]:
        """Value at the entry (forward) or exit (backward) block."""
        return frozenset()

    def gen(self, block: BasicBlock) -> FrozenSet[str]:
        return frozenset()

    def kill(self, block: BasicBlock) -> FrozenSet[str]:
        return frozenset()

    def transfer(self, block: BasicBlock, value: FrozenSet[str]) -> FrozenSet[str]:
        return (value - self.kill(block)) | self.gen(block)

    def edge_value(
        self, block: BasicBlock, edge: Edge, value: FrozenSet[str]
    ) -> FrozenSet[str]:
        """Value leaving ``block`` along ``edge`` (default: after value)."""
        return value


@dataclass
class DataflowResult:
    """Fixpoint values in program order (before = top of block)."""

    before: Dict[int, Value] = field(default_factory=dict)
    after: Dict[int, Value] = field(default_factory=dict)


def _meet(problem: DataflowProblem, values: List[Value]) -> Value:
    result: Value = TOP
    for value in values:
        if value is TOP:
            continue
        if result is TOP:
            result = value
        elif problem.may:
            result = result | value  # type: ignore[operator]
        else:
            result = result & value  # type: ignore[operator]
    if result is TOP and problem.may:
        return frozenset()
    return result


def solve(
    cfg: CFG,
    problem: DataflowProblem,
    order: Optional[Sequence[int]] = None,
) -> DataflowResult:
    """Run ``problem`` over ``cfg`` to fixpoint.

    ``order`` seeds the worklist (any permutation of block ids); the
    fixpoint reached is order-independent, so this is only a knob for
    tests and performance.
    """
    forward = problem.direction == FORWARD
    boundary_block = cfg.entry if forward else cfg.exit
    seed: Value = frozenset(problem.boundary(cfg))

    # "upstream" value = before (forward) / after (backward);
    # "downstream" value = the other one.
    upstream: Dict[int, Value] = {}
    downstream: Dict[int, Value] = {}
    for block in cfg.blocks:
        upstream[block.block_id] = TOP
        downstream[block.block_id] = TOP
    upstream[boundary_block] = seed

    if order is None:
        order = [block.block_id for block in cfg.blocks]
    worklist: Deque[int] = deque(order)
    queued = set(worklist)
    budget = 64 * (len(cfg.blocks) + 2) * (len(cfg.blocks) + 2) + 1024

    while worklist:
        budget -= 1
        if budget < 0:
            raise ConfigurationError(
                "dataflow solver failed to converge; non-monotone transfer?"
            )
        block_id = worklist.popleft()
        queued.discard(block_id)
        block = cfg.blocks[block_id]

        if block_id == boundary_block:
            in_value: Value = seed
        else:
            incoming: List[Value] = []
            edges = block.preds if forward else block.succs
            for edge in edges:
                other = edge.src if forward else edge.dst
                other_value = downstream[other]
                if other_value is TOP:
                    incoming.append(TOP)
                else:
                    incoming.append(
                        problem.edge_value(
                            cfg.blocks[other], edge, other_value
                        )
                    )
            in_value = _meet(problem, incoming)
            if in_value is TOP and problem.may:
                in_value = frozenset()
        upstream[block_id] = in_value

        if in_value is TOP:
            out_value: Value = TOP
        else:
            out_value = problem.transfer(block, in_value)
        if out_value != downstream[block_id]:
            downstream[block_id] = out_value
            targets = block.succs if forward else block.preds
            for edge in targets:
                nxt = edge.dst if forward else edge.src
                if nxt not in queued:
                    worklist.append(nxt)
                    queued.add(nxt)

    if forward:
        return DataflowResult(before=upstream, after=downstream)
    return DataflowResult(before=downstream, after=upstream)
