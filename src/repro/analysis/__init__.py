"""Repo-specific static analysis (``python -m repro lint``).

The reproduction's two load-bearing guarantees are *exactness* (lower
bounds never exceed the true DTW_rho distance, so no false dismissals)
and *faithful I/O accounting* (every counted page access flows through
the :class:`~repro.storage.buffer.BufferPool`, so the paper's
``NUM_IO`` / page-access metric means what it says).  Neither guarantee
is enforced by the type system, and both can be silently violated by an
innocent-looking refactor.  This package makes them machine-checked:

* :mod:`repro.analysis.framework` — the rule registry, suppression
  comments (``# repro: ignore[RS001]``), and the linting driver;
* :mod:`repro.analysis.rules` — the repo-specific rules (RS001–RS006);
* :mod:`repro.analysis.contracts` — the static lower-bound contract
  table that RS005 cross-checks against ``repro/core/lower_bounds.py``;
* :mod:`repro.analysis.cli` — output formatting and the ``lint``
  subcommand behind ``python -m repro lint``.

The framework is intentionally self-contained (stdlib ``ast`` only) so
the linter can gate CI without any third-party dependency.
"""

from __future__ import annotations

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import (
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    rule_registry,
)

# Importing the rules module registers every built-in rule.
from repro.analysis import rules as _rules  # noqa: F401  (side effect)

__all__ = [
    "Finding",
    "Rule",
    "Severity",
    "all_rules",
    "lint_paths",
    "lint_source",
    "rule_registry",
]
