"""Repo-specific static analysis (``python -m repro lint``).

The reproduction's two load-bearing guarantees are *exactness* (lower
bounds never exceed the true DTW_rho distance, so no false dismissals)
and *faithful I/O accounting* (every counted page access flows through
the :class:`~repro.storage.buffer.BufferPool`, so the paper's
``NUM_IO`` / page-access metric means what it says).  Neither guarantee
is enforced by the type system, and both can be silently violated by an
innocent-looking refactor.  This package makes them machine-checked:

* :mod:`repro.analysis.framework` — the rule registry (node-rules and
  flow-rules), suppression comments (``# repro: ignore[RS001]``), and
  the linting driver;
* :mod:`repro.analysis.rules` — the per-node AST rules (RS001–RS009);
* :mod:`repro.analysis.cfg` / :mod:`repro.analysis.dataflow` — the
  per-function control-flow graphs and the generic forward/backward
  gen-kill worklist solver the flow-rules run on;
* :mod:`repro.analysis.concurrency` — the sharing-contract vocabulary
  (``@shared_across_queries``, ``@guarded_by``, ``@single_query``,
  ``@requires_lock``), both runtime decorators and their AST reader;
* :mod:`repro.analysis.flow_rules` — the CFG/dataflow rules
  (RS010 lock-discipline, RS011 resource-lifecycle,
  RS012 check-then-act);
* :mod:`repro.analysis.contracts` — the static lower-bound contract
  table that RS005 cross-checks against ``repro/core/lower_bounds.py``;
* :mod:`repro.analysis.cli` — output formatting (human, JSON, SARIF)
  and the ``lint`` subcommand behind ``python -m repro lint``.

The framework is intentionally self-contained (stdlib ``ast`` only) so
the linter can gate CI without any third-party dependency.
"""

from __future__ import annotations

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import (
    FlowRule,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    rule_registry,
)

# Importing the rule modules registers every built-in rule.
from repro.analysis import rules as _rules  # noqa: F401  (side effect)
from repro.analysis import flow_rules as _flow_rules  # noqa: F401  (side effect)

__all__ = [
    "Finding",
    "FlowRule",
    "Rule",
    "Severity",
    "all_rules",
    "lint_paths",
    "lint_source",
    "rule_registry",
]
