"""The static lower-bound contract table (checked by rule RS005).

The paper's no-false-dismissal guarantee (Lemma 1 / Theorem 1) rests on
a *chain* of bounding functions::

    DTW_rho >= LB_Keogh >= LB_PAA >= MINDIST

plus the composite MDMWP- and MSEQ-distances built on top of them.
Every one of those functions must honor a direction contract: a
``lower`` bound may never exceed the quantity it bounds, an ``upper``
bound may never fall below it.  The table below is the single
machine-readable statement of which functions participate in that
chain and in which direction.

Rule RS005 cross-checks this table against ``repro/core/lower_bounds.py``
in both directions:

* a bound-shaped function (``lb_*``, ``mindist*``, ``maxdist*``,
  ``mdmwp*``, ``mseq*``) defined in the module but missing here means a
  new bound slipped in without a declared contract — and therefore
  without the property tests that :mod:`tests.test_lower_bounds` and
  ``tests/test_property_core.py`` key off this chain;
* an entry here with no matching definition means the contract table
  went stale after a rename, so the declared guarantee no longer maps
  to real code.

Adding a bound is intentionally a two-file change: implement it in
``repro/core/lower_bounds.py`` *and* declare it here (with the quantity
it bounds), or RS005 fails the build.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping, Tuple


@dataclass(frozen=True)
class BoundContract:
    """The declared behavior of one bounding function.

    Attributes
    ----------
    kind:
        ``"lower"`` or ``"upper"`` — the inequality direction relative
        to ``bounds``.
    bounds:
        The quantity being bounded, written as the paper writes it.
    tightens:
        The next-tighter function in the chain (empty for the tightest
        link); documents Lemma 1's ordering.
    """

    kind: str
    bounds: str
    tightens: str = ""


#: Prefixes that mark a function in ``core/lower_bounds.py`` as a
#: bounding function that must carry a contract.
BOUND_NAME_PREFIXES: Tuple[str, ...] = (
    "lb_",
    "mindist",
    "maxdist",
    "mdmwp",
    "mseq",
)

#: The contract table itself.  Keys are function names in
#: ``repro/core/lower_bounds.py``.
LOWER_BOUND_CONTRACTS: Mapping[str, BoundContract] = MappingProxyType(
    {
        "lb_keogh_pow": BoundContract(
            kind="lower",
            bounds="DTW_rho(Q, S) ** p",
            tightens="",
        ),
        "lb_keogh": BoundContract(
            kind="lower",
            bounds="DTW_rho(Q, S)",
            tightens="",
        ),
        "lb_paa_pow": BoundContract(
            kind="lower",
            bounds="LB_Keogh(E(Q), S) ** p",
            tightens="lb_keogh_pow",
        ),
        "lb_paa": BoundContract(
            kind="lower",
            bounds="LB_Keogh(E(Q), S)",
            tightens="lb_keogh",
        ),
        "lb_keogh_pow_batch": BoundContract(
            kind="lower",
            bounds="DTW_rho(Q, S_b) ** p per batch row",
            tightens="",
        ),
        "lb_paa_pow_batch": BoundContract(
            kind="lower",
            bounds="LB_Keogh(E(Q), S_b) ** p per batch row",
            tightens="lb_keogh_pow_batch",
        ),
        "mindist_pow": BoundContract(
            kind="lower",
            bounds="LB_PAA(P(E(Q)), P(S)) ** p for every P(S) in the MBR",
            tightens="lb_paa_pow",
        ),
        "mindist_pow_batch": BoundContract(
            kind="lower",
            bounds="LB_PAA(P(E(Q)), P(S)) ** p for every P(S) in MBR_b, per row",
            tightens="lb_paa_pow_batch",
        ),
        "maxdist_pow_batch": BoundContract(
            kind="upper",
            bounds="LB_PAA(P(E(Q)), P(S)) ** p over every P(S) in MBR_b, per row",
            tightens="",
        ),
        "mdmwp_pow_batch": BoundContract(
            kind="lower",
            bounds="DTW_rho(Q, S_b) ** p (Definition 2, via r disjoint windows)",
            tightens="",
        ),
        "batch_lower_bounds": BoundContract(
            kind="lower",
            bounds="LB_PAA ** p per entry (near; far is the MAXDIST upper bound)",
            tightens="mindist_pow_batch",
        ),
        "maxdist_pow": BoundContract(
            kind="upper",
            bounds="LB_PAA(P(E(Q)), P(S)) ** p over every P(S) in the MBR",
            tightens="",
        ),
        "mdmwp_pow": BoundContract(
            kind="lower",
            bounds="DTW_rho(Q, S) ** p (Definition 2, via r disjoint windows)",
            tightens="",
        ),
        "mseq_distance_pow": BoundContract(
            kind="lower",
            bounds="DTW_rho(Q, S) ** p (Definition 6, per equivalence class)",
            tightens="",
        ),
        "lb_keogh_znorm_pow": BoundContract(
            kind="lower",
            bounds="DTW_rho(Q_hat, (S - mu) / sigma) ** p",
            tightens="",
        ),
        "lb_paa_znorm_pow_batch": BoundContract(
            kind="lower",
            bounds=(
                "LB_Keogh(E(Q_hat), (S_b - mu_b) / sigma_b) ** p per batch "
                "row (deflated for affine-PAA float rounding)"
            ),
            tightens="lb_keogh_znorm_pow",
        ),
        "mindist_znorm_pow_batch": BoundContract(
            kind="lower",
            bounds=(
                "LB_PAA_znorm ** p for every candidate in MBR_b with stats "
                "in the (mu, sigma) box, per row"
            ),
            tightens="lb_paa_znorm_pow_batch",
        ),
        "maxdist_znorm_pow_batch": BoundContract(
            kind="upper",
            bounds=(
                "LB_PAA_znorm ** p over every candidate in MBR_b with stats "
                "in the (mu, sigma) box, per row"
            ),
            tightens="",
        ),
        "batch_lower_bounds_znorm": BoundContract(
            kind="lower",
            bounds=(
                "LB_PAA_znorm ** p per entry (near; far is the normalized "
                "MAXDIST upper bound)"
            ),
            tightens="mindist_znorm_pow_batch",
        ),
    }
)


def is_bound_name(name: str) -> bool:
    """Whether a function name is bound-shaped and must carry a contract."""
    return name.startswith(BOUND_NAME_PREFIXES)
