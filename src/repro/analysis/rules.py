"""The built-in repo-specific rules (RS001–RS009).

Each rule polices one contract that the paper's guarantees rest on but
that Python cannot express in the type system.  The catalog with full
rationale lives in ``docs/static-analysis.md``; the one-line versions
are in each rule's ``rationale`` attribute (shown by ``--list-rules``).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple, Union

from repro.analysis.contracts import (
    LOWER_BOUND_CONTRACTS,
    is_bound_name,
)
from repro.analysis.findings import Finding
from repro.analysis.framework import ModuleSource, Rule, register

AnyFunction = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _own_nodes(func: AnyFunction) -> Iterator[ast.AST]:
    """Nodes in a function body, excluding nested function bodies.

    Nested functions are linted as functions in their own right, so the
    enclosing function must not inherit (or be blamed for) their calls.
    """
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _terminal_name(expr: ast.expr) -> Optional[str]:
    """The last identifier of a dotted expression (``a.b.pager`` -> ``pager``)."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


@register
class BufferBypassRule(Rule):
    """RS001: ``Pager.read`` called outside the buffer layer.

    The paper's headline metric is the number of page accesses
    (``NUM_IO``), measured at the :class:`~repro.storage.pager.Pager`
    and deduplicated by the :class:`~repro.storage.buffer.BufferPool`'s
    LRU cache.  Any code path that calls ``Pager.read`` directly fetches
    pages *around* the pool: it inflates the physical-read counters
    relative to what a buffered execution would cost, skips the pool's
    transient-fault retry policy, and makes engine comparisons
    meaningless.  Only the buffer layer itself (and the fault-injection
    wrapper, which subclasses ``Pager``) may issue physical reads.
    """

    code = "RS001"
    name = "buffer-bypass"
    rationale = (
        "Pager.read outside the buffer layer corrupts the paper's "
        "page-access (NUM_IO) accounting and skips fault retries."
    )

    #: Modules allowed to touch the pager's physical read path.
    whitelist = (
        "repro/storage/pager.py",
        "repro/storage/buffer.py",
        "repro/storage/faults.py",
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.path.startswith("repro/"):
            return
        if module.path in self.whitelist:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "read"):
                continue
            receiver = _terminal_name(func.value)
            if receiver is None:
                continue
            if receiver == "Pager" or "pager" in receiver.lower():
                yield self.finding(
                    module,
                    node,
                    f"physical read bypasses the BufferPool "
                    f"({ast.unparse(func)}): route page fetches through "
                    f"BufferPool.get() so NUM_IO accounting and retry "
                    f"policy apply",
                )


@register
class ExceptionTaxonomyRule(Rule):
    """RS002: generic builtin exceptions raised inside the library layers.

    ``repro/exceptions.py`` defines the typed hierarchy that the
    degradation machinery keys off: engines catch ``StorageError`` to
    decide raise-vs-degrade, persistence distinguishes
    ``PartialSaveError`` from ``IntegrityError``, and the CLI maps
    ``ReproError`` to exit codes.  A bare ``ValueError`` or
    ``RuntimeError`` raised inside ``storage/``/``engines/`` escapes all
    of that: it aborts degraded queries that should have skipped a page
    and is indistinguishable from a genuine bug at API boundaries.
    """

    code = "RS002"
    name = "exception-taxonomy"
    rationale = (
        "Generic builtin raises in library layers escape the typed "
        "ReproError hierarchy that fault degradation keys off."
    )

    scope = ("repro/core/", "repro/storage/", "repro/engines/", "repro/index/")

    #: Builtin exception classes that must not be raised by library code.
    #: ``FileNotFoundError`` is deliberately allowed (it is precise, and
    #: the CLI handles it as "no such database"); ``NotImplementedError``
    #: is the standard abstract-stub idiom.
    disallowed = frozenset(
        {
            "BaseException",
            "Exception",
            "ValueError",
            "TypeError",
            "RuntimeError",
            "KeyError",
            "IndexError",
            "LookupError",
            "ArithmeticError",
            "ZeroDivisionError",
            "AssertionError",
            "OSError",
            "IOError",
            "StopIteration",
        }
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.in_package(*self.scope):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = exc.id if isinstance(exc, ast.Name) else None
            if name in self.disallowed:
                yield self.finding(
                    module,
                    node,
                    f"raise of builtin {name} in a library layer: raise "
                    f"a typed subclass of ReproError from "
                    f"repro/exceptions.py instead",
                )


@register
class FloatEqualityRule(Rule):
    """RS003: ``==``/``!=`` against float constants in ``core/``.

    The distance and lower-bound code is the exactness-critical layer:
    a float equality test against a computed value (e.g. comparing a
    distance to ``0.0`` or a bound to a literal) silently becomes a
    nondeterministic branch under reassociation, differing BLAS builds,
    or ``p`` values that do not round-trip.  Compare against tolerances,
    use ``math.isinf``/``math.isnan`` for sentinels, or — for genuinely
    exact dispatch on a *user-supplied parameter* — suppress with an
    inline ``# repro: ignore[RS003]`` stating the intent.
    """

    code = "RS003"
    name = "float-equality"
    rationale = (
        "Float == in distance/lower-bound code turns exactness-critical "
        "branches nondeterministic; use isinf/isnan or tolerances."
    )

    scope = ("repro/core/",)

    def _is_float_operand(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, float):
            return True
        if isinstance(expr, ast.Name) and expr.id == "_INF":
            return True
        if isinstance(expr, ast.Attribute) and expr.attr in ("inf", "nan"):
            return True
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id == "float":
                return True
        return False

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.in_package(*self.scope):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(self._is_float_operand(operand) for operand in operands):
                yield self.finding(
                    module,
                    node,
                    "float equality comparison in exactness-critical "
                    "code: use math.isinf/math.isnan for sentinels or a "
                    "tolerance for computed values (suppress only for "
                    "intentional exact parameter dispatch)",
                )


@register
class MutableDefaultRule(Rule):
    """RS004: mutable default argument values.

    A list/dict/set default is created once at definition time and
    shared across calls.  In this codebase that is how a stray
    candidate list or stats accumulator leaks state *between queries*,
    which corrupts the per-query counters the benchmarks report.
    """

    code = "RS004"
    name = "mutable-default"
    rationale = (
        "Mutable defaults share state across calls — in this repo that "
        "leaks candidates/counters between queries."
    )

    _mutable_calls = frozenset({"list", "dict", "set", "bytearray"})

    def _is_mutable(self, expr: ast.expr) -> bool:
        if isinstance(
            expr,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
             ast.SetComp),
        ):
            return True
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in self._mutable_calls:
                return True
        return False

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for func in module.functions():
            defaults: List[Optional[ast.expr]] = [
                *func.args.defaults,
                *func.args.kw_defaults,
            ]
            for default in defaults:
                if default is not None and self._is_mutable(default):
                    yield self.finding(
                        module,
                        default,
                        f"mutable default argument in {func.name}(): "
                        f"evaluated once and shared across calls; default "
                        f"to None and create inside the function",
                    )


@register
class LowerBoundContractRule(Rule):
    """RS005: bound functions must match the static contract table.

    Cross-checks ``repro/core/lower_bounds.py`` against
    :data:`repro.analysis.contracts.LOWER_BOUND_CONTRACTS` in both
    directions, so the no-false-dismissal chain of Lemma 1 always has a
    machine-readable statement of which functions participate and in
    which direction (see the contracts module docstring).
    """

    code = "RS005"
    name = "lower-bound-contract"
    rationale = (
        "Every bound function must be declared in the static contract "
        "table, keeping Lemma 1's chain machine-checkable."
    )

    #: The one module whose definitions the table describes.
    target = "repro/core/lower_bounds.py"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.path != self.target:
            return
        defined: dict = {}
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defined[node.name] = node
        for name, node in defined.items():
            if is_bound_name(name) and name not in LOWER_BOUND_CONTRACTS:
                yield self.finding(
                    module,
                    node,
                    f"bound-shaped function {name}() has no entry in "
                    f"repro/analysis/contracts.py: declare its direction "
                    f"(lower/upper) and the quantity it bounds, and cover "
                    f"it in the lower-bound property tests",
                )
        for name in LOWER_BOUND_CONTRACTS:
            if name not in defined:
                yield self.finding_at(
                    module,
                    1,
                    f"contract table entry {name!r} has no matching "
                    f"definition in {self.target}: the declared guarantee "
                    f"no longer maps to code (stale after a rename?)",
                )


@register
class StatsDisciplineRule(Rule):
    """RS006: engine code that fetches pages must thread ``QueryStats``.

    The paper's three reported metrics (candidates, page accesses, wall
    time) are only comparable across engines because every fetch path
    updates the same :class:`~repro.core.metrics.QueryStats` object.  An
    engine function that reads index nodes (``read_node``) or candidate
    values (``get_subsequence``) without access to the query's stats —
    no ``stats``/``evaluator`` parameter and no ``.stats`` attribute —
    is doing unaccounted work that silently skews Figure 8-style
    comparisons.
    """

    code = "RS006"
    name = "missing-stats"
    rationale = (
        "Engine fetch paths without QueryStats access do unaccounted "
        "I/O work, skewing the paper's per-engine metrics."
    )

    scope = ("repro/engines/",)

    #: Method names whose invocation implies page fetches.
    fetching_calls = frozenset({"read_node", "get_subsequence"})

    #: Parameter names / annotation substrings that prove stats access.
    _stat_params = frozenset({"stats", "evaluator", "recorder"})
    _stat_annotations = ("QueryStats", "CandidateEvaluator", "StatsRecorder")
    _stat_attrs = frozenset({"stats", "_stats"})

    def _fetch_calls(self, func: AnyFunction) -> List[ast.Call]:
        calls = []
        for node in _own_nodes(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self.fetching_calls
            ):
                calls.append(node)
        return calls

    def _has_stats_access(self, func: AnyFunction) -> bool:
        args = func.args
        params = [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        ]
        for param in params:
            if param.arg in self._stat_params:
                return True
            if param.annotation is not None:
                annotation = ast.unparse(param.annotation)
                if any(hint in annotation for hint in self._stat_annotations):
                    return True
        for node in _own_nodes(func):
            if isinstance(node, ast.Name) and node.id in self._stat_params:
                return True
            if isinstance(node, ast.Attribute) and node.attr in self._stat_attrs:
                return True
        return False

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.in_package(*self.scope):
            return
        for func in module.functions():
            calls = self._fetch_calls(func)
            if not calls or self._has_stats_access(func):
                continue
            for call in calls:
                assert isinstance(call.func, ast.Attribute)
                yield self.finding(
                    module,
                    call,
                    f"{func.name}() fetches pages via "
                    f".{call.func.attr}() but has no QueryStats access "
                    f"(no stats/evaluator parameter or .stats attribute): "
                    f"thread the query's stats so page work is accounted",
                )

@register
class CheckpointDisciplineRule(Rule):
    """RS007: engine traversal loops must call ``checkpoint()``.

    The budget/deadline/cancellation plane (:mod:`repro.control`) is
    *cooperative*: limits only trip when engine code polls them.  An
    engine loop that never calls
    :meth:`~repro.control.ExecutionControl.checkpoint` is a blind spot —
    a query stuck in that loop ignores its deadline, overruns its page
    budget unbounded, and cannot be cancelled.  Every outermost
    ``for``/``while`` loop in an engine's ``_run``/``search`` must
    therefore contain a ``.checkpoint()`` call somewhere in its body
    (nested loops are covered by the enclosing loop's subtree).
    """

    code = "RS007"
    name = "missing-checkpoint"
    rationale = (
        "Engine loops without budget.checkpoint() are uncancellable "
        "blind spots that ignore deadlines and I/O budgets."
    )

    scope = ("repro/engines/",)

    #: Function names that constitute an engine's main traversal.
    loop_functions = frozenset({"_run", "search"})

    def _outermost_loops(
        self, func: AnyFunction
    ) -> Iterator[Union[ast.For, ast.While]]:
        """Top-level loops of a function body (nested functions excluded)."""
        stack: List[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.For, ast.While)):
                yield node
                continue  # nested loops belong to this loop's subtree
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _has_checkpoint(loop: Union[ast.For, ast.While]) -> bool:
        for node in ast.walk(loop):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "checkpoint"
            ):
                return True
        return False

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.in_package(*self.scope):
            return
        for func in module.functions():
            if func.name not in self.loop_functions:
                continue
            for loop in self._outermost_loops(func):
                if not self._has_checkpoint(loop):
                    keyword = "for" if isinstance(loop, ast.For) else "while"
                    yield self.finding(
                        module,
                        loop,
                        f"{keyword} loop in {func.name}() never calls "
                        f"budget.checkpoint(): the query cannot be "
                        f"cancelled or budget-limited while it runs; "
                        f"checkpoint at the loop boundary (see "
                        f"repro.control)",
                    )


@register
class SpanDisciplineRule(Rule):
    """RS008: tracer spans must be opened via ``with`` context managers.

    The observability plane's conformance guarantee — every span
    closed, the tree well-nested, ``buffer.fetch`` span counts summing
    exactly to NUM_IO — rests on spans being closed on *every* exit
    path, including exceptions (budget interrupts unwind straight
    through engine loops).  A bare ``tracer.start_span(...)`` /
    ``tracer.span(...)`` call whose result is not a ``with`` context
    leaks an open span: every later span nests under it, the exporter
    reports an unclosed tree, and the conformance suite fails far from
    the actual bug.  Long-lived spans that genuinely cannot be a
    ``with`` block (e.g. a stream's root span closed in a finalizer)
    must pair ``start_span`` with a guaranteed ``close()`` and suppress
    with ``# repro: ignore[RS008]`` stating where the close happens.
    """

    code = "RS008"
    name = "span-discipline"
    rationale = (
        "Bare start_span()/span() calls outside a with-statement leak "
        "open spans, breaking span-tree nesting and NUM_IO conformance."
    )

    #: The tracer implementation itself manages span lifetimes by hand.
    whitelist = ("repro/obs/tracer.py",)

    def _is_tracer_receiver(self, expr: ast.expr) -> bool:
        name = _terminal_name(expr)
        return name is not None and "tracer" in name.lower()

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.path.startswith("repro/"):
            return
        if module.path in self.whitelist:
            return
        with_contexts: Set[ast.AST] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_contexts.add(item.context_expr)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "start_span":
                pass  # any receiver: the raw opener is always suspect
            elif func.attr == "span" and self._is_tracer_receiver(
                func.value
            ):
                pass
            else:
                continue
            if node in with_contexts:
                continue
            yield self.finding(
                module,
                node,
                f"span opened without a with-statement "
                f"({ast.unparse(func)}(...)): use "
                f"'with tracer.span(...):' so the span closes on every "
                f"exit path; a deliberately long-lived span must "
                f"guarantee close() and suppress this line",
            )


@register
class WalDisciplineRule(Rule):
    """RS009: page mutation outside a WAL/session context.

    Crash safety of online ingest (:mod:`repro.ingest`) rests on
    write-ahead discipline: every post-build structural mutation —
    ``Pager.allocate``/``write``/``free`` against a sealed database —
    must be intent-logged to the :class:`~repro.storage.wal.WriteAheadLog`
    *before* it is applied, or recovery replays a WAL that does not
    describe what actually happened to the pages.  A storage/index
    function that mutates pages with no session context in sight — no
    ``wal``/``session`` parameter and no ``self._wal``/``session``
    reference — is either an offline build path (funnel its writes
    through a helper and suppress with ``# repro: ignore[RS009]``
    stating why, as the R*-tree does) or a crash-unsafe write that
    recovery can never reproduce.  The WAL, pager, buffer,
    fault-injection, and persistence layers implement the discipline
    and are exempt.
    """

    code = "RS009"
    name = "wal-discipline"
    rationale = (
        "Pager mutations outside a WAL/ingest-session context are "
        "invisible to crash recovery: log intent first or funnel "
        "through a session-threaded path."
    )

    scope = ("repro/storage/", "repro/index/")

    #: Layers that implement the discipline rather than consume it.
    whitelist = (
        "repro/storage/pager.py",
        "repro/storage/buffer.py",
        "repro/storage/faults.py",
        "repro/storage/wal.py",
        "repro/storage/persistence.py",
    )

    #: Pager methods that mutate page state.
    mutators = frozenset({"allocate", "write", "free"})

    #: Parameter names / annotation substrings that prove session context.
    _context_params = frozenset({"wal", "session", "ingest"})
    _context_annotations = ("WriteAheadLog", "IngestSession")
    _context_names = frozenset({"wal", "_wal", "session", "_session"})

    def _mutator_calls(self, func: AnyFunction) -> List[ast.Call]:
        calls = []
        for node in _own_nodes(func):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self.mutators
            ):
                continue
            receiver = _terminal_name(node.func.value)
            if receiver is None:
                continue
            if receiver == "Pager" or "pager" in receiver.lower():
                calls.append(node)
        return calls

    def _has_session_context(self, func: AnyFunction) -> bool:
        args = func.args
        params = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        for param in params:
            if param.arg in self._context_params:
                return True
            if param.annotation is not None:
                annotation = ast.unparse(param.annotation)
                if any(
                    hint in annotation for hint in self._context_annotations
                ):
                    return True
        for node in _own_nodes(func):
            if isinstance(node, ast.Name) and node.id in self._context_names:
                return True
            if (
                isinstance(node, ast.Attribute)
                and node.attr in self._context_names
            ):
                return True
        return False

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.in_package(*self.scope):
            return
        if module.path in self.whitelist:
            return
        for func in module.functions():
            calls = self._mutator_calls(func)
            if not calls or self._has_session_context(func):
                continue
            for call in calls:
                assert isinstance(call.func, ast.Attribute)
                yield self.finding(
                    module,
                    call,
                    f"{func.name}() mutates pages via "
                    f".{call.func.attr}() with no WAL/session context "
                    f"(no wal/session parameter or self._wal reference): "
                    f"log intent to the WAL before applying, or funnel "
                    f"through a session-threaded path (see repro.ingest)",
                )
