"""Flow-rules RS010–RS013: concurrency contracts checked over CFGs.

These rules combine :mod:`repro.analysis.cfg`,
:mod:`repro.analysis.dataflow` and the contract vocabulary of
:mod:`repro.analysis.concurrency` to make path-sensitive claims that
no single-node AST rule can:

* **RS010 lock-discipline** — every read/write of a ``@guarded_by``
  attribute happens with the named lock held on *all* CFG paths
  (forward must-analysis of held locks; exceptional edges included).
* **RS011 resource-lifecycle** — tracer spans, ingest sessions,
  buffer-pool pins and WAL handles opened in a function are closed /
  committed / released on *every* path out of it (forward may-analysis
  of still-open resources; ``with``/``finally`` discipline).
* **RS012 check-then-act** — in a ``@shared_across_queries`` class, an
  ``if`` that reads an attribute and then mutates the same attribute
  must run under a lock, or two queries interleave between the check
  and the act.
* **RS013 service-loop discipline** — in :mod:`repro.serve`, every
  unbounded (``while True``) loop must poll ``checkpoint()`` so
  shutdown is observed, and no engine-execution call
  (``search`` / ``range_search`` / ``iter_matches`` / ``get_next``)
  may run with a service lock held (must-analysis of held locks —
  a lock held across an engine call serializes the whole service
  behind one query).

Documented blind spots (kept deliberately, to stay simple and fast):
closures over ``self`` are not analyzed against their enclosing
class's contract (RS010 skips nested functions), aliased locks
(``lock = self._lock``) are not tracked, and resources handed to
another object (passed as a call argument, stored on an attribute,
returned) are treated as ownership transfer and no longer tracked.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.cfg import (
    CFG,
    EXCEPTION,
    BasicBlock,
    Edge,
    FunctionNode,
    walk_evaluated,
)
from repro.analysis.concurrency import ClassContract, module_contracts
from repro.analysis.dataflow import (
    FORWARD,
    DataflowProblem,
    is_top,
    solve,
)
from repro.analysis.findings import Finding
from repro.analysis.framework import FlowRule, ModuleSource, register

#: Methods allowed to touch guarded state without the lock: the object
#: is not yet (or no longer) reachable by other queries while they run.
_LIFECYCLE_METHODS = {"__init__", "__post_init__", "__new__", "__del__"}


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``"X"`` (None for anything else)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _self_method_call(node: ast.AST) -> Optional[str]:
    """``self.m(...)`` -> ``"m"``."""
    if isinstance(node, ast.Call):
        attr = _self_attr(node.func)
        return attr
    return None


def _with_lock_attrs(stmt: ast.stmt, locks: FrozenSet[str]) -> Set[str]:
    """Lock attributes acquired by ``with self.<lock>:`` items."""
    acquired: Set[str] = set()
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            attr = _self_attr(item.context_expr)
            if attr is not None and attr in locks:
                acquired.add(attr)
    return acquired


def _acquire_release_attrs(
    stmt: ast.stmt, locks: FrozenSet[str], method: str
) -> Set[str]:
    """Lock attributes on which ``self.<lock>.<method>()`` is called."""
    out: Set[str] = set()
    for node in walk_evaluated(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == method
        ):
            attr = _self_attr(node.func.value)
            if attr is not None and attr in locks:
                out.add(attr)
    return out


class _HeldLocks(DataflowProblem):
    """Forward must-analysis: which of ``locks`` are held at each block.

    Gen: ``with self.<lock>:`` headers and explicit ``.acquire()``.
    Kill: the with-statement's synthetic exit blocks (normal *and*
    exceptional — ``__exit__`` releases on both) and explicit
    ``.release()``.  The gen is dropped along an ``exception`` edge
    leaving the acquiring block itself: if ``__enter__``/``acquire``
    raised, the lock was never taken.
    """

    direction = FORWARD
    may = False

    def __init__(self, locks: FrozenSet[str], entry: FrozenSet[str]) -> None:
        self._locks = locks
        self._entry = entry

    def boundary(self, cfg: CFG) -> FrozenSet[str]:
        return self._entry

    def gen(self, block: BasicBlock) -> FrozenSet[str]:
        out: Set[str] = set()
        for stmt in block.statements:
            out |= _with_lock_attrs(stmt, self._locks)
            out |= _acquire_release_attrs(stmt, self._locks, "acquire")
        return frozenset(out)

    def kill(self, block: BasicBlock) -> FrozenSet[str]:
        out: Set[str] = set()
        if block.label in ("with-exit", "with-except") and isinstance(
            block.origin, (ast.With, ast.AsyncWith)
        ):
            out |= _with_lock_attrs(block.origin, self._locks)
        for stmt in block.statements:
            out |= _acquire_release_attrs(stmt, self._locks, "release")
        return frozenset(out)

    def edge_value(
        self, block: BasicBlock, edge: Edge, value: FrozenSet[str]
    ) -> FrozenSet[str]:
        if edge.kind == EXCEPTION:
            return value - self.gen(block)
        return value


def _held_before(
    module: ModuleSource,
    func: FunctionNode,
    locks: FrozenSet[str],
    entry: FrozenSet[str],
) -> Tuple[CFG, Dict[int, object]]:
    cfg = module.cfg(func)
    result = solve(cfg, _HeldLocks(locks, entry))
    return cfg, result.before


@register
class LockDisciplineRule(FlowRule):
    """RS010: guarded attributes only touched with their lock held."""

    code = "RS010"
    name = "lock-discipline"
    rationale = (
        "a @guarded_by attribute read/written without its lock held on "
        "every CFG path is a data race once queries run concurrently"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        contracts: Dict[ast.ClassDef, ClassContract] = {
            contract.node: contract
            for contract in module_contracts(module.tree)
        }
        if not contracts:
            return
        for owner, func, in self._methods(module, contracts):
            contract = contracts[owner]
            yield from self._check_method(module, contract, func)

    def _methods(
        self,
        module: ModuleSource,
        contracts: Dict[ast.ClassDef, ClassContract],
    ) -> Iterator[Tuple[ast.ClassDef, FunctionNode]]:
        for owner, func in module.function_contexts():
            if owner is None or owner not in contracts:
                continue
            contract = contracts[owner]
            if not contract.guards and not contract.requires:
                continue
            if func.name in _LIFECYCLE_METHODS:
                continue
            yield owner, func

    def _check_method(
        self,
        module: ModuleSource,
        contract: ClassContract,
        func: FunctionNode,
    ) -> Iterator[Finding]:
        locks = frozenset(contract.lock_attrs)
        entry = frozenset(
            {contract.requires[func.name]}
            if func.name in contract.requires
            else ()
        )
        cfg, before = _held_before(module, func, locks, entry)
        reported: Set[Tuple[int, int, str]] = set()
        for block in cfg.blocks:
            held = before.get(block.block_id)
            if held is None or is_top(held):
                continue  # unreachable
            for stmt in block.statements:
                for node in walk_evaluated(stmt):
                    yield from self._check_node(
                        module, contract, node, held, reported
                    )

    def _check_node(
        self,
        module: ModuleSource,
        contract: ClassContract,
        node: ast.AST,
        held: object,
        reported: Set[Tuple[int, int, str]],
    ) -> Iterator[Finding]:
        assert isinstance(held, frozenset)
        attr = _self_attr(node)
        if attr is not None and attr in contract.guards:
            lock = contract.guards[attr]
            if lock not in held:
                key = (node.lineno, node.col_offset, attr)
                if key not in reported:
                    reported.add(key)
                    yield self.finding(
                        module,
                        node,
                        f"access to 'self.{attr}' (guarded by "
                        f"'self.{lock}') without the lock held on every "
                        f"path; wrap in 'with self.{lock}:'",
                    )
        method = _self_method_call(node)
        if method is not None and method in contract.requires:
            lock = contract.requires[method]
            if lock not in held:
                key = (node.lineno, node.col_offset, f"{method}()")
                if key not in reported:
                    reported.add(key)
                    yield self.finding(
                        module,
                        node,
                        f"call to 'self.{method}()' requires "
                        f"'self.{lock}' held (declared via "
                        f"@requires_lock) but no path guarantees it",
                    )


# ---------------------------------------------------------------------------
# RS011 resource lifecycle
# ---------------------------------------------------------------------------

#: method-call openers: method name -> (human label, closer methods).
_METHOD_OPENERS: Dict[str, Tuple[str, FrozenSet[str]]] = {
    "start_span": ("tracer span", frozenset({"close", "end_span"})),
    "ingest": ("ingest session", frozenset({"commit", "abort", "close"})),
    "pin": ("buffer-pool pin", frozenset({"release", "unpin", "close"})),
}

#: bare-callable openers (constructors/factories): name -> same shape.
_CALLABLE_OPENERS: Dict[str, Tuple[str, FrozenSet[str]]] = {
    "WriteAheadLog": ("write-ahead log", frozenset({"close"})),
    "create_durable": ("write-ahead log", frozenset({"close"})),
}

#: Modules that implement the resources themselves; their internals
#: legitimately juggle half-open handles.
_RS011_EXEMPT = ("repro/obs/tracer.py",)


def _opener_of(call: ast.AST) -> Optional[Tuple[str, FrozenSet[str]]]:
    if not isinstance(call, ast.Call):
        return None
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in _METHOD_OPENERS:
        return _METHOD_OPENERS[func.attr]
    if isinstance(func, ast.Name) and func.id in _CALLABLE_OPENERS:
        return _CALLABLE_OPENERS[func.id]
    return None


def _names_in(node: ast.AST) -> Set[str]:
    return {
        child.id for child in ast.walk(node) if isinstance(child, ast.Name)
    }


class _OpenResources(DataflowProblem):
    """Forward may-analysis: which resource variables may be open."""

    direction = FORWARD
    may = True

    def __init__(
        self,
        opens: Dict[int, Dict[str, ast.Call]],  # block id -> var -> call
        closers: Dict[str, FrozenSet[str]],  # var -> closer methods
    ) -> None:
        self._opens = opens
        self._closers = closers
        self._vars = frozenset(closers)

    def gen(self, block: BasicBlock) -> FrozenSet[str]:
        return frozenset(self._opens.get(block.block_id, {}))

    def kill(self, block: BasicBlock) -> FrozenSet[str]:
        killed: Set[str] = set()
        for stmt in block.statements:
            killed |= self._killed_by(stmt)
        return frozenset(killed)

    def edge_value(
        self, block: BasicBlock, edge: Edge, value: FrozenSet[str]
    ) -> FrozenSet[str]:
        # If the opener call itself raised, the resource never existed.
        if edge.kind == EXCEPTION:
            return value - self.gen(block)
        return value

    def _killed_by(self, stmt: ast.stmt) -> Set[str]:
        killed: Set[str] = set()
        # `with resource:` — the context manager closes it.
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                expr = item.context_expr
                if isinstance(expr, ast.Name) and expr.id in self._vars:
                    killed.add(expr.id)
        # Ownership transfer out of the function.
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            killed |= _names_in(stmt.value) & self._vars
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id in self._vars:
                    killed.add(target.id)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            value = stmt.value
            for target in targets:
                # Rebinding the variable forgets the old resource;
                # storing it on an object transfers ownership.
                if isinstance(target, ast.Name) and target.id in self._vars:
                    killed.add(target.id)
                if isinstance(target, (ast.Attribute, ast.Subscript, ast.Tuple)):
                    if value is not None:
                        killed |= _names_in(value) & self._vars
            if (
                value is not None
                and isinstance(value, ast.Name)
                and value.id in self._vars
            ):
                killed.add(value.id)  # alias: tracked var escapes
        for node in walk_evaluated(stmt):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in self._vars
                    and func.attr in self._closers[func.value.id]
                ):
                    killed.add(func.value.id)
                for arg in node.args:
                    inner = (
                        arg.value if isinstance(arg, ast.Starred) else arg
                    )
                    killed |= _names_in(inner) & self._vars
                for keyword in node.keywords:
                    killed |= _names_in(keyword.value) & self._vars
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                if node.value is not None:
                    killed |= _names_in(node.value) & self._vars
        return killed


@register
class ResourceLifecycleRule(FlowRule):
    """RS011: spans/sessions/pins/WAL handles closed on every path."""

    code = "RS011"
    name = "resource-lifecycle"
    rationale = (
        "a span/ingest-session/pin/WAL handle that can reach function "
        "exit unclosed leaks on the exceptional path; use with/finally"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.in_package("repro/"):
            return
        if module.in_package(*_RS011_EXEMPT):
            return
        for _owner, func in module.function_contexts():
            yield from self._check_function(module, func)

    def _check_function(
        self, module: ModuleSource, func: FunctionNode
    ) -> Iterator[Finding]:
        opens, closers, discarded = self._collect(module, func)
        for call, label in discarded:
            yield self.finding(
                module,
                call,
                f"{label} opened and immediately discarded; nothing can "
                "ever close it — use 'with' or keep a reference",
            )
        if not closers:
            return
        cfg = module.cfg(func)
        result = solve(cfg, _OpenResources(opens, closers))
        exit_value = result.before.get(cfg.exit)
        if exit_value is None or is_top(exit_value):
            return
        assert isinstance(exit_value, frozenset)
        reported: Set[str] = set()
        for block_opens in opens.values():
            for var, call in block_opens.items():
                if var in exit_value and var not in reported:
                    reported.add(var)
                    label = (_opener_of(call) or ("resource", frozenset()))[0]
                    closer_names = " / ".join(
                        sorted(f".{name}()" for name in closers[var])
                    )
                    yield self.finding(
                        module,
                        call,
                        f"{label} '{var}' may reach function exit without "
                        f"{closer_names} on some path (exceptions "
                        "included); use 'with' or close in a 'finally'",
                    )

    def _collect(
        self, module: ModuleSource, func: FunctionNode
    ) -> Tuple[
        Dict[int, Dict[str, ast.Call]],
        Dict[str, FrozenSet[str]],
        List[Tuple[ast.Call, str]],
    ]:
        cfg = module.cfg(func)
        opens: Dict[int, Dict[str, ast.Call]] = {}
        closers: Dict[str, FrozenSet[str]] = {}
        discarded: List[Tuple[ast.Call, str]] = []
        for block in cfg.blocks:
            for stmt in block.statements:
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    value = stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target = stmt.target
                    value = stmt.value
                elif isinstance(stmt, ast.Expr):
                    opener = _opener_of(stmt.value)
                    if opener is not None:
                        assert isinstance(stmt.value, ast.Call)
                        discarded.append((stmt.value, opener[0]))
                    continue
                else:
                    continue
                if value is None or not isinstance(target, ast.Name):
                    continue
                opener = _opener_of(value)
                if opener is None:
                    continue
                assert isinstance(value, ast.Call)
                opens.setdefault(block.block_id, {})[target.id] = value
                closers[target.id] = opener[1]
        return opens, closers, discarded


# ---------------------------------------------------------------------------
# RS012 check-then-act
# ---------------------------------------------------------------------------

#: Method calls on an attribute that count as mutating it.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)


def _attrs_read(node: ast.AST) -> Set[str]:
    """Self-attributes read anywhere inside ``node``."""
    reads: Set[str] = set()
    for child in ast.walk(node):
        attr = _self_attr(child)
        if attr is not None and isinstance(child.ctx, ast.Load):  # type: ignore[attr-defined]
            reads.add(attr)
    return reads


def _direct_writes(node: ast.AST) -> Set[str]:
    """Self-attributes directly mutated inside ``node``.

    Covers plain/aug/ann assignment to ``self.X`` or ``self.X[...]``,
    ``del`` of either, and mutator method calls (``self.X.pop()``).
    Nested function/class bodies are not descended into.
    """
    writes: Set[str] = set()
    pending: List[ast.AST] = [node]
    while pending:
        current = pending.pop()
        if isinstance(
            current,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ) and current is not node:
            continue
        if isinstance(current, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                current.targets
                if isinstance(current, ast.Assign)
                else [current.target]
            )
            for target in targets:
                writes |= _write_target_attrs(target)
        elif isinstance(current, ast.Delete):
            for target in current.targets:
                writes |= _write_target_attrs(target)
        elif isinstance(current, ast.Call):
            func = current.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                attr = _self_attr(func.value)
                if attr is not None:
                    writes.add(attr)
        pending.extend(ast.iter_child_nodes(current))
    return writes


def _write_target_attrs(target: ast.AST) -> Set[str]:
    attr = _self_attr(target)
    if attr is not None:
        return {attr}
    if isinstance(target, ast.Subscript):
        attr = _self_attr(target.value)
        if attr is not None:
            return {attr}
    if isinstance(target, (ast.Tuple, ast.List)):
        out: Set[str] = set()
        for element in target.elts:
            out |= _write_target_attrs(element)
        return out
    return set()


def _any_lock_universe(func: FunctionNode) -> FrozenSet[str]:
    """Every ``self.<attr>`` used as a with-context or acquire target."""
    locks: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr is not None:
                    locks.add(attr)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
        ):
            attr = _self_attr(node.func.value)
            if attr is not None:
                locks.add(attr)
    return frozenset(locks)


@register
class CheckThenActRule(FlowRule):
    """RS012: read-test-mutate of a shared attribute under no lock."""

    code = "RS012"
    name = "check-then-act"
    rationale = (
        "in a @shared_across_queries class, testing an attribute and "
        "then mutating it outside a lock lets two queries interleave "
        "between the check and the act"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        shared = {
            contract.node: contract
            for contract in module_contracts(module.tree)
            if contract.shared
        }
        if not shared:
            return
        for owner, func in module.function_contexts():
            if owner is None or owner not in shared:
                continue
            if func.name in _LIFECYCLE_METHODS:
                continue
            contract = shared[owner]
            writes_by_method = self._writes_by_method(owner)
            yield from self._check_method(
                module, contract, func, writes_by_method
            )

    def _writes_by_method(self, klass: ast.ClassDef) -> Dict[str, Set[str]]:
        out: Dict[str, Set[str]] = {}
        for child in klass.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out[child.name] = _direct_writes(child)
        return out

    def _check_method(
        self,
        module: ModuleSource,
        contract: ClassContract,
        func: FunctionNode,
        writes_by_method: Dict[str, Set[str]],
    ) -> Iterator[Finding]:
        locks = _any_lock_universe(func) | frozenset(contract.lock_attrs)
        entry = frozenset(
            {contract.requires[func.name]}
            if func.name in contract.requires
            else ()
        )
        cfg, before = _held_before(module, func, locks, entry)
        for block in cfg.blocks:
            if not block.statements:
                continue
            stmt = block.statements[0]
            if not isinstance(stmt, ast.If):
                continue
            held = before.get(block.block_id)
            if held is None or is_top(held):
                continue
            assert isinstance(held, frozenset)
            if held:
                continue  # some lock is held across the check
            reads = _attrs_read(stmt.test)
            if not reads:
                continue
            writes: Set[str] = set()
            for branch_stmt in stmt.body + stmt.orelse:
                writes |= _direct_writes(branch_stmt)
                for node in ast.walk(branch_stmt):
                    method = _self_method_call(node)
                    if method is not None and method in writes_by_method:
                        writes |= writes_by_method[method]
            racy = sorted(reads & writes)
            if racy:
                attrs = ", ".join(f"'self.{attr}'" for attr in racy)
                yield self.finding(
                    module,
                    stmt,
                    f"check-then-act on shared attribute(s) {attrs} "
                    "without a lock: the test and the mutation can "
                    "interleave with another query; hold a lock across "
                    "both",
                )


# ---------------------------------------------------------------------------
# RS013 service-loop discipline
# ---------------------------------------------------------------------------

#: Terminal attribute names that constitute engine execution: calling
#: any of these runs (part of) a query against the database.
_ENGINE_EXECUTION_CALLS = frozenset(
    {"search", "range_search", "iter_matches", "get_next"}
)


def _is_constant_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


@register
class ServiceLoopDisciplineRule(FlowRule):
    """RS013: serve loops checkpoint; no lock held across engine calls.

    The query service is built from daemon loops (worker, accept,
    connection handlers) that only terminate cooperatively: an
    unbounded ``while True`` loop that never polls ``checkpoint()``
    keeps its thread alive through :meth:`QueryService.shutdown`
    forever.  And because the service multiplexes many queries over a
    few locks, holding *any* service lock across an engine-execution
    call serializes every other request behind one query's I/O — the
    exact convoy the bounded queue and admission controller exist to
    prevent.  Both halves share the :class:`_HeldLocks` must-analysis
    with RS010, so the lock claim holds on *all* CFG paths.
    """

    code = "RS013"
    name = "service-loop-discipline"
    rationale = (
        "an uncheckpointed while-True service loop never observes "
        "shutdown, and a lock held across engine execution convoys "
        "every concurrent request behind one query"
    )

    scope = ("repro/serve/",)

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.in_package(*self.scope):
            return
        contracts: Dict[ast.ClassDef, ClassContract] = {
            contract.node: contract
            for contract in module_contracts(module.tree)
        }
        for owner, func in module.function_contexts():
            yield from self._check_loops(module, func)
            contract = contracts.get(owner) if owner is not None else None
            yield from self._check_engine_calls(module, func, contract)

    # -- half one: unbounded loops must poll checkpoint() --------------

    def _outermost_loops(
        self, func: FunctionNode
    ) -> Iterator[ast.While]:
        stack: List[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.While):
                yield node
                continue  # nested loops belong to this loop's subtree
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _has_checkpoint(loop: ast.While) -> bool:
        for node in ast.walk(loop):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "checkpoint"
            ):
                return True
        return False

    def _check_loops(
        self, module: ModuleSource, func: FunctionNode
    ) -> Iterator[Finding]:
        for loop in self._outermost_loops(func):
            if not _is_constant_true(loop.test):
                continue  # bounded loops terminate on their own
            if not self._has_checkpoint(loop):
                yield self.finding(
                    module,
                    loop,
                    f"unbounded 'while True' loop in {func.name}() never "
                    f"calls checkpoint(): the thread outlives shutdown "
                    f"and the service cannot drain; poll "
                    f"shutdown_control.checkpoint() each iteration",
                )

    # -- half two: no service lock held across engine execution --------

    def _check_engine_calls(
        self,
        module: ModuleSource,
        func: FunctionNode,
        contract: Optional[ClassContract],
    ) -> Iterator[Finding]:
        locks = _any_lock_universe(func)
        if contract is not None:
            locks |= frozenset(contract.lock_attrs)
        if not locks:
            return
        entry = frozenset(
            {contract.requires[func.name]}
            if contract is not None and func.name in contract.requires
            else ()
        )
        cfg, before = _held_before(module, func, locks, entry)
        reported: Set[Tuple[int, int]] = set()
        for block in cfg.blocks:
            held = before.get(block.block_id)
            if held is None or is_top(held):
                continue  # unreachable
            assert isinstance(held, frozenset)
            if not held:
                continue
            for stmt in block.statements:
                for node in walk_evaluated(stmt):
                    if not (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _ENGINE_EXECUTION_CALLS
                    ):
                        continue
                    key = (node.lineno, node.col_offset)
                    if key in reported:
                        continue
                    reported.add(key)
                    held_names = ", ".join(
                        sorted(f"'self.{name}'" for name in held)
                    )
                    yield self.finding(
                        module,
                        node,
                        f"engine-execution call '.{node.func.attr}()' "
                        f"with {held_names} held on every path: a lock "
                        f"held across engine execution serializes all "
                        f"concurrent requests behind this query; "
                        f"release before dispatching",
                    )
