"""Finding and severity model for the static analyzer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Union


class Severity(enum.Enum):
    """How seriously a finding gates the build.

    ``ERROR`` findings fail ``python -m repro lint`` (exit code 1);
    ``WARNING`` findings are reported but do not affect the exit code
    unless ``--strict`` is passed.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is (path, line, col, code) so reports are stable across
    runs and dict/set iteration orders.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    severity: Severity = Severity.ERROR

    def format_human(self) -> str:
        """``path:line:col: CODE severity: message`` (editor-clickable)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} {self.severity}: {self.message}"
        )

    def as_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-ready representation (``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
        }
