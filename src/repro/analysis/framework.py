"""Rule registry, suppression comments, and the linting driver.

A rule is a class with a unique ``code`` (``RSnnn``), registered via the
:func:`register` decorator.  Rules receive a parsed
:class:`ModuleSource` and yield :class:`~repro.analysis.findings.Finding`
objects; the driver then filters findings through inline suppression
comments::

    pager.read(page_id)        # repro: ignore[RS001]
    x == 2.0                   # repro: ignore[RS003, RS004]
    anything_at_all()          # repro: ignore

Scoping is by *virtual path*: the path of the module relative to (and
including) the ``repro`` package root, in POSIX form — for example
``repro/storage/buffer.py``.  Rules use it to restrict themselves to
the layers whose contracts they police, and tests use it to lint
in-memory fixture snippets as if they lived anywhere in the tree.
"""

from __future__ import annotations

import abc
import ast
import pathlib
import re
import tokenize
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

from repro.analysis.findings import Finding, Severity
from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.cfg import CFG, FunctionNode

#: Matches one suppression comment.  ``# repro: ignore`` suppresses every
#: rule on the line; ``# repro: ignore[RS001, RS003]`` only those codes.
_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]*)\])?"
)

#: Sentinel stored in the suppression map for a blanket ``ignore``.
_ALL_CODES = "*"

_CODE_RE = re.compile(r"^RS\d{3}$")


@dataclass(frozen=True)
class ModuleSource:
    """One parsed module handed to every rule.

    Attributes
    ----------
    path:
        Virtual POSIX path starting at the ``repro`` package root
        (``repro/core/distance.py``); rules scope on this.
    source:
        Full module text.
    tree:
        Parsed AST of ``source``.
    """

    path: str
    source: str
    tree: ast.Module

    def in_package(self, *prefixes: str) -> bool:
        """Whether the module lives under any of the given prefixes."""
        return any(self.path.startswith(prefix) for prefix in prefixes)

    def functions(self) -> Iterator[ast.FunctionDef]:
        """Every (sync) function definition, including methods."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.FunctionDef):
                yield node

    def function_contexts(
        self,
    ) -> Iterator[Tuple[Optional[ast.ClassDef], "FunctionNode"]]:
        """Every function definition with its owning class, if any.

        The owner is the class whose *body* directly contains the
        ``def`` — functions nested inside methods have ``None`` (they
        do not define methods, and ``self`` inside them is a closure
        variable the flow rules deliberately do not chase).
        """

        def visit(
            body: Sequence[ast.stmt], owner: Optional[ast.ClassDef]
        ) -> Iterator[Tuple[Optional[ast.ClassDef], "FunctionNode"]]:
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield owner, node
                    yield from visit(node.body, None)
                elif isinstance(node, ast.ClassDef):
                    yield from visit(node.body, node)
                elif isinstance(node, (ast.If, ast.Try)):
                    # Conditionally-defined functions still get checked.
                    yield from visit(getattr(node, "body", []), owner)
                    yield from visit(getattr(node, "orelse", []), owner)
                    yield from visit(getattr(node, "finalbody", []), owner)
                    for handler in getattr(node, "handlers", []):
                        yield from visit(handler.body, owner)

        yield from visit(self.tree.body, None)

    def cfg(self, func: "FunctionNode") -> "CFG":
        """Build (and cache) the control-flow graph of one function.

        Cached per :class:`ModuleSource` so several flow rules can
        analyze the same module without rebuilding graphs.
        """
        from repro.analysis.cfg import build_cfg

        cache: Dict[int, "CFG"] = self.__dict__.get("_cfg_cache", {})
        if "_cfg_cache" not in self.__dict__:
            object.__setattr__(self, "_cfg_cache", cache)
        key = id(func)
        if key not in cache:
            cache[key] = build_cfg(func)
        return cache[key]


class Rule(abc.ABC):
    """Base class for one lint rule.

    Subclasses set the class attributes and implement :meth:`check`.
    ``rationale`` ties the rule back to the paper guarantee it protects;
    it is surfaced by ``python -m repro lint --list-rules`` and in the
    rule catalog documentation.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""
    severity: Severity = Severity.ERROR

    @abc.abstractmethod
    def check(self, module: ModuleSource) -> Iterator[Finding]:
        """Yield findings for one module."""

    def finding(
        self, module: ModuleSource, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at an AST node."""
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
            severity=self.severity,
        )

    def finding_at(
        self, module: ModuleSource, line: int, message: str
    ) -> Finding:
        """Build a finding at an explicit line (column 1)."""
        return Finding(
            path=module.path,
            line=line,
            col=1,
            code=self.code,
            message=message,
            severity=self.severity,
        )


class FlowRule(Rule):
    """Base class for rules that reason over control flow.

    Node-rules (RS001–RS009) pattern-match single AST nodes; flow-rules
    (RS010+) need the per-function CFGs from
    :mod:`repro.analysis.cfg` and the dataflow solver from
    :mod:`repro.analysis.dataflow` to make path-sensitive claims
    ("this lock is held on *every* path reaching the access",
    "this resource escapes *some* path unclosed").  Both kinds live in
    the same registry and run through the same driver; this base class
    only adds the CFG plumbing.
    """

    def function_cfgs(
        self, module: ModuleSource
    ) -> Iterator[Tuple[Optional[ast.ClassDef], "FunctionNode", "CFG"]]:
        """Every function in the module with its owner class and CFG."""
        for owner, func in module.function_contexts():
            yield owner, func, module.cfg(func)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry.

    Codes must be unique and match ``RSnnn``; collisions are a
    programming error and fail fast.
    """
    code = rule_class.code
    if not _CODE_RE.match(code):
        raise ConfigurationError(
            f"rule code {code!r} does not match the RSnnn convention"
        )
    if code in _REGISTRY and _REGISTRY[code] is not rule_class:
        raise ConfigurationError(f"duplicate rule code {code}")
    _REGISTRY[code] = rule_class
    return rule_class


def rule_registry() -> Dict[str, Type[Rule]]:
    """A copy of the code -> rule-class registry."""
    return dict(_REGISTRY)


def all_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Rule]:
    """Instantiate registered rules, optionally filtered by code.

    ``select`` keeps only the listed codes; ``ignore`` drops the listed
    codes.  Unknown codes raise
    :class:`~repro.exceptions.ConfigurationError` so typos in CI
    configuration fail loudly instead of silently disabling a gate.
    """
    known = set(_REGISTRY)
    chosen = set(known)
    if select is not None:
        wanted = {code.strip() for code in select if code.strip()}
        unknown = wanted - known
        if unknown:
            raise ConfigurationError(
                f"unknown rule code(s): {', '.join(sorted(unknown))}"
            )
        chosen = wanted
    if ignore is not None:
        dropped = {code.strip() for code in ignore if code.strip()}
        unknown = dropped - known
        if unknown:
            raise ConfigurationError(
                f"unknown rule code(s): {', '.join(sorted(unknown))}"
            )
        chosen -= dropped
    return [_REGISTRY[code]() for code in sorted(chosen)]


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of suppressed codes (``*`` = all).

    Uses the tokenizer so suppression markers inside string literals do
    not count; falls back to a line scan if the module does not tokenize
    (the parse error will surface separately).
    """
    suppressions: Dict[int, Set[str]] = {}

    def record(line: int, comment: str) -> None:
        match = _SUPPRESSION_RE.search(comment)
        if match is None:
            return
        codes = match.group("codes")
        if codes is None:
            suppressions.setdefault(line, set()).add(_ALL_CODES)
            return
        for code in codes.split(","):
            code = code.strip()
            if code:
                suppressions.setdefault(line, set()).add(code)

    try:
        lines = iter(source.splitlines(keepends=True))
        for token in tokenize.generate_tokens(lambda: next(lines, "")):
            if token.type == tokenize.COMMENT:
                record(token.start[0], token.string)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for line_number, text in enumerate(source.splitlines(), start=1):
            if "#" in text:
                record(line_number, text[text.index("#") :])
    return suppressions


#: Compound statements whose ``end_lineno`` spans a whole suite; their
#: headers must *not* alias suppressions, or a comment on an ``if`` line
#: would silence every finding in its body.
_COMPOUND_STMTS = (
    ast.If,
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.With,
    ast.AsyncWith,
    ast.Try,
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
)


def suppression_aliases(tree: ast.Module) -> Dict[int, Set[int]]:
    """Map finding lines to the other lines whose comments cover them.

    Two cases beyond the exact-line match:

    * a *multi-line simple statement* — a suppression comment on the
      logical line's first physical line covers findings anchored
      anywhere in the statement's span;
    * a *decorated definition* — a comment on any decorator line or on
      the ``def``/``class`` line covers findings anchored anywhere in
      the definition's header (decorators through the signature).
    """
    alias: Dict[int, Set[int]] = {}
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            anchors = {dec.lineno for dec in node.decorator_list}
            anchors.add(node.lineno)
            start = min(anchors)
            end = node.body[0].lineno - 1 if node.body else node.lineno
        elif isinstance(node, ast.stmt) and not isinstance(
            node, _COMPOUND_STMTS
        ):
            end = getattr(node, "end_lineno", None) or node.lineno
            if end == node.lineno:
                continue  # single-line: exact match already covers it
            anchors = {node.lineno}
            start = node.lineno
        else:
            continue
        for line in range(start, end + 1):
            alias.setdefault(line, set()).update(anchors)
    return alias


@dataclass
class LintReport:
    """Findings plus bookkeeping for one lint run."""

    findings: List[Finding] = field(default_factory=list)
    #: Findings silenced by ``# repro: ignore`` comments.
    suppressed: int = 0
    #: Files that failed to parse (reported as findings too).
    parse_errors: int = 0
    files_checked: int = 0


def lint_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
    report: Optional[LintReport] = None,
) -> List[Finding]:
    """Lint one module given as text; returns unsuppressed findings.

    ``path`` is the virtual path used for rule scoping (see module
    docstring).  This is the primary entry point for fixture-based
    tests: snippets can be linted *as if* they lived at any layer.
    """
    if report is None:
        report = LintReport()
    if rules is None:
        rules = all_rules()
    report.files_checked += 1
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        report.parse_errors += 1
        finding = Finding(
            path=path,
            line=error.lineno or 1,
            col=(error.offset or 1),
            code="RS000",
            message=f"syntax error: {error.msg}",
            severity=Severity.ERROR,
        )
        report.findings.append(finding)
        return [finding]
    module = ModuleSource(path=path, source=source, tree=tree)
    suppressions = parse_suppressions(source)
    aliases = suppression_aliases(tree) if suppressions else {}
    kept: List[Finding] = []
    for rule in rules:
        for finding in rule.check(module):
            lines = {finding.line} | aliases.get(finding.line, set())
            suppressed_here: Set[str] = set()
            for line in lines:
                suppressed_here |= suppressions.get(line, set())
            if _ALL_CODES in suppressed_here or finding.code in suppressed_here:
                report.suppressed += 1
                continue
            kept.append(finding)
    kept.sort()
    report.findings.extend(kept)
    return kept


def virtual_path(file_path: pathlib.Path) -> str:
    """Compute the ``repro/...`` virtual path for a real file.

    Uses the last ``repro`` component in the path so checkouts nested
    under directories that happen to be called ``repro`` still resolve.
    Files outside the package (tests, benchmarks) keep their real
    relative path, which no layer-scoped rule matches.
    """
    parts = file_path.as_posix().split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return file_path.name


def iter_python_files(paths: Sequence[pathlib.Path]) -> Iterator[pathlib.Path]:
    """Expand files and directories into a sorted stream of ``.py`` files."""
    for path in paths:
        if path.is_dir():
            yield from sorted(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
                and "egg-info" not in candidate.name
            )
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Sequence[pathlib.Path],
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` and return the report."""
    report = LintReport()
    if rules is None:
        rules = all_rules()
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        lint_source(
            source, virtual_path(file_path), rules=rules, report=report
        )
    report.findings.sort()
    return report
