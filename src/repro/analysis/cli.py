"""Output formatting and the ``python -m repro lint`` entry point."""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional, TextIO

from repro.analysis.findings import Severity
from repro.analysis.framework import LintReport, all_rules, lint_paths
from repro.exceptions import ConfigurationError

# Importing the rule modules registers the built-in rules.
from repro.analysis import rules as _rules  # noqa: F401  (side effect)
from repro.analysis import flow_rules as _flow_rules  # noqa: F401  (side effect)


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [code.strip() for code in raw.split(",") if code.strip()]


def format_human(report: LintReport, stream: TextIO) -> None:
    """One clickable line per finding plus a summary line."""
    for finding in report.findings:
        print(finding.format_human(), file=stream)
    errors = sum(
        1 for finding in report.findings if finding.severity is Severity.ERROR
    )
    warnings = len(report.findings) - errors
    summary = (
        f"checked {report.files_checked} file(s): "
        f"{errors} error(s), {warnings} warning(s)"
    )
    if report.suppressed:
        summary += f", {report.suppressed} suppressed"
    print(summary, file=stream)


def format_json(report: LintReport, stream: TextIO) -> None:
    """Machine-readable report (stable schema for CI annotations)."""
    payload = {
        "files_checked": report.files_checked,
        "errors": sum(
            1
            for finding in report.findings
            if finding.severity is Severity.ERROR
        ),
        "warnings": sum(
            1
            for finding in report.findings
            if finding.severity is Severity.WARNING
        ),
        "suppressed": report.suppressed,
        "findings": [finding.as_dict() for finding in report.findings],
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")


#: SARIF 2.1.0 — the interchange format GitHub code scanning and most
#: editors ingest.  One run, one driver, results referencing rule ids.
_SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def format_sarif(report: LintReport, stream: TextIO) -> None:
    """SARIF 2.1.0 output (``--format sarif``)."""
    levels = {Severity.ERROR: "error", Severity.WARNING: "warning"}
    rules = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.name},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {
                "level": levels.get(rule.severity, "warning")
            },
        }
        for rule in all_rules()
    ]
    results = [
        {
            "ruleId": finding.code,
            "level": levels.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        for finding in report.findings
    ]
    payload = {
        "$schema": _SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/"
                            "static-analysis.md"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")


def list_rules(stream: TextIO) -> None:
    """Print the rule catalog (code, name, severity, rationale)."""
    for rule in all_rules():
        print(f"{rule.code} {rule.name} [{rule.severity}]", file=stream)
        print(f"    {rule.rationale}", file=stream)


def add_lint_parser(
    subparsers: "argparse._SubParsersAction[argparse.ArgumentParser]",
) -> argparse.ArgumentParser:
    """Register the ``lint`` subcommand on the main CLI parser."""
    lint = subparsers.add_parser(
        "lint",
        help="run the repo-specific static invariant checker",
        description=(
            "Statically check the repro-specific contracts (buffer-pool "
            "I/O accounting, typed exceptions, float-equality hygiene, "
            "lower-bound contract table, stats threading).  Exits 0 when "
            "clean, 1 on errors, 2 on bad usage."
        ),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="output format (default: human)",
    )
    lint.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    lint.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as build-failing",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    lint.set_defaults(func=run_lint)
    return lint


def run_lint(args: argparse.Namespace) -> int:
    """Execute ``repro lint`` with parsed arguments."""
    if args.list_rules:
        list_rules(sys.stdout)
        return 0
    try:
        rules = all_rules(
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
        )
    except ConfigurationError as error:
        print(f"lint: {error}", file=sys.stderr)
        return 2
    paths = [pathlib.Path(raw) for raw in args.paths]
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        print(
            f"lint: no such file or directory: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    report = lint_paths(paths, rules=rules)
    if args.format == "json":
        format_json(report, sys.stdout)
    elif args.format == "sarif":
        format_sarif(report, sys.stdout)
    else:
        format_human(report, sys.stdout)
    failing = [
        finding
        for finding in report.findings
        if finding.severity is Severity.ERROR or args.strict
    ]
    return 1 if failing else 0
