"""Per-function control-flow graphs for the flow-rule engine.

:func:`build_cfg` turns one ``def`` into a :class:`CFG` of
:class:`BasicBlock` nodes — one statement per block, plus a handful of
synthetic blocks (function entry/exit, ``with`` cleanup, ``finally``
entry, ``except`` handler entry).  Edges carry a *kind*:

``normal``
    sequential fall-through;
``true`` / ``false``
    the two sides of an ``if``/``while``/``for``/``match`` test;
``loop``
    the back edge from a loop body to its header;
``exception``
    control transferred by a raised exception — from any statement
    that can raise to the innermost handler/cleanup, or to the
    function exit when nothing intervenes.

Cleanup semantics (the part the concurrency rules lean on):

* ``with`` statements get a header block (the context expression), a
  synthetic *normal-exit* block and a synthetic *exceptional-exit*
  block, both carrying ``origin`` pointing back at the ``With`` node —
  a dataflow client can kill "lock held" / "resource open" facts at
  exactly those blocks, on *every* path out of the body, including
  ``return`` and raised exceptions.  An exception raised by the header
  itself (``__enter__`` failing) bypasses both cleanup blocks, because
  ``__exit__`` never runs in that case.
* ``try/finally`` routes body exceptions, early ``return``/``break``/
  ``continue`` and normal completion through the single ``finally``
  subgraph, then re-dispatches each pending continuation in the outer
  context — nested ``finally`` chains compose.  The ``finally`` body
  is built once, so continuations that co-occur merge there; this can
  add paths that no concrete execution takes, which is sound (extra
  paths only make must-analyses more conservative).
* ``try/except`` adds an exception edge from every raising statement
  in the body to every handler entry *and* keeps propagating outward
  (a handler may not match the raised type — the graph cannot know).

Nested ``def``/``class`` statements are opaque: they occupy one block
in the enclosing function's CFG and their bodies are never descended
into.  Statements after a ``return``/``raise``/``break``/``continue``
become blocks with no incoming edges (dead code, analyzed as
unreachable).

Everything here is stdlib-``ast`` only, like the rest of
``repro.analysis``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Edge kinds.
NORMAL = "normal"
TRUE = "true"
FALSE = "false"
LOOP = "loop"
EXCEPTION = "exception"

#: Statements that can never raise on their own.
_NO_RAISE = (ast.Pass, ast.Break, ast.Continue, ast.Global, ast.Nonlocal)

#: Statements whose body lives in a different scope — one opaque block.
_OPAQUE = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


@dataclass(frozen=True)
class Edge:
    """One directed control-flow edge."""

    src: int
    dst: int
    kind: str


@dataclass
class BasicBlock:
    """One node of the CFG.

    ``statements`` holds at most one statement; for compound statements
    (``if``/``while``/``for``/``with``/``match``) the block represents
    the *header* — only the expressions returned by
    :func:`evaluated_nodes` are evaluated in it, the suites live in
    their own blocks.  Synthetic blocks (``label`` of ``entry``,
    ``exit``, ``with-exit``, ``with-except``, ``finally-entry``,
    ``except-entry``) hold no statements; cleanup blocks carry
    ``origin`` pointing at the ``with``/``try``/handler node they
    serve.
    """

    block_id: int
    statements: List[ast.stmt] = field(default_factory=list)
    label: str = ""
    origin: Optional[ast.AST] = None
    succs: List[Edge] = field(default_factory=list)
    preds: List[Edge] = field(default_factory=list)


@dataclass
class CFG:
    """Control-flow graph of one function."""

    func: FunctionNode
    blocks: List[BasicBlock]
    entry: int
    exit: int

    def block(self, block_id: int) -> BasicBlock:
        return self.blocks[block_id]

    def statement_block(self, stmt: ast.stmt) -> Optional[BasicBlock]:
        """The unique block holding ``stmt`` (header block for compounds)."""
        for block in self.blocks:
            if any(existing is stmt for existing in block.statements):
                return block
        return None

    def reachable(self) -> Set[int]:
        """Block ids reachable from the entry block."""
        seen: Set[int] = set()
        stack = [self.entry]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for edge in self.blocks[current].succs:
                if edge.dst not in seen:
                    stack.append(edge.dst)
        return seen

    def dominators(self) -> Dict[int, Set[int]]:
        """Classic iterative dominator sets over reachable blocks.

        ``dom[b]`` is the set of blocks that appear on *every* path
        from entry to ``b``; unreachable blocks are absent.
        """
        reachable = self.reachable()
        universe = set(reachable)
        dom: Dict[int, Set[int]] = {b: set(universe) for b in reachable}
        dom[self.entry] = {self.entry}
        changed = True
        while changed:
            changed = False
            for block_id in sorted(reachable):
                if block_id == self.entry:
                    continue
                preds = [
                    edge.src
                    for edge in self.blocks[block_id].preds
                    if edge.src in reachable
                ]
                if preds:
                    new = set.intersection(*(dom[p] for p in preds))
                else:
                    new = set(universe)
                new.add(block_id)
                if new != dom[block_id]:
                    dom[block_id] = new
                    changed = True
        return dom


def evaluated_nodes(stmt: ast.stmt) -> List[ast.AST]:
    """The AST nodes actually *evaluated* in the block holding ``stmt``.

    For simple statements that is the statement itself; for compound
    headers it is only the header expressions (test, iterable, context
    expressions) — the suites belong to other blocks.  Opaque nested
    scopes evaluate nothing in the enclosing function.
    """
    if isinstance(stmt, _OPAQUE):
        return []
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        nodes: List[ast.AST] = []
        for item in stmt.items:
            nodes.append(item.context_expr)
            if item.optional_vars is not None:
                nodes.append(item.optional_vars)
        return nodes
    if isinstance(stmt, ast.Try) or stmt.__class__.__name__ == "TryStar":
        return []
    match_type = getattr(ast, "Match", None)
    if match_type is not None and isinstance(stmt, match_type):
        return [stmt.subject]
    return [stmt]


def walk_evaluated(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Walk every node evaluated in the block holding ``stmt``.

    Like ``ast.walk`` over :func:`evaluated_nodes`, but pruning nested
    ``lambda`` bodies (they run later, in their own frame).
    """
    pending: List[ast.AST] = list(evaluated_nodes(stmt))
    while pending:
        node = pending.pop()
        yield node
        if isinstance(node, ast.Lambda):
            pending.extend(node.args.defaults)
            pending.extend(
                default
                for default in node.args.kw_defaults
                if default is not None
            )
            continue
        pending.extend(ast.iter_child_nodes(node))


#: Continuation requests recorded against a cleanup frame while the
#: suite it protects is being built, resolved once the frame pops.
_FALL = "fallthrough"
_RETURN = "return"
_RAISE = "exception"
_BREAK = "break"
_CONTINUE = "continue"


@dataclass
class _CleanupFrame:
    kind: str  # "except" | "finally" | "with"
    handler_entries: List[int] = field(default_factory=list)
    entry: int = -1  # finally entry, or the with normal-exit block
    entry_exc: int = -1  # with exceptional-exit block
    pending: Set[str] = field(default_factory=set)


@dataclass
class _LoopFrame:
    header: int
    after: int
    depth: int  # cleanup-stack depth when the loop was entered


_End = Tuple[int, str]  # (block id, edge kind for the outgoing edge)


class _Builder:
    def __init__(self, func: FunctionNode) -> None:
        self.func = func
        self.blocks: List[BasicBlock] = []
        self.cleanup: List[_CleanupFrame] = []
        self.loops: List[_LoopFrame] = []
        self.entry_id = self.new_block(label="entry")
        self.exit_id = self.new_block(label="exit")

    # -- plumbing -----------------------------------------------------

    def new_block(
        self, label: str = "", origin: Optional[ast.AST] = None
    ) -> int:
        block = BasicBlock(block_id=len(self.blocks), label=label, origin=origin)
        self.blocks.append(block)
        return block.block_id

    def edge(self, src: int, dst: int, kind: str) -> None:
        edge = Edge(src=src, dst=dst, kind=kind)
        if edge in self.blocks[src].succs:
            return
        self.blocks[src].succs.append(edge)
        self.blocks[dst].preds.append(edge)

    def wire(self, preds: Sequence[_End], dst: int) -> None:
        for src, kind in preds:
            self.edge(src, dst, kind)

    # -- non-local routing --------------------------------------------

    def route_exception(self, src: int) -> None:
        """Wire ``src`` to wherever a raised exception can go."""
        for frame in reversed(self.cleanup):
            if frame.kind == "except":
                for handler in frame.handler_entries:
                    self.edge(src, handler, EXCEPTION)
                # A handler may not match; keep propagating outward.
                continue
            if frame.kind == "finally":
                self.edge(src, frame.entry, EXCEPTION)
                frame.pending.add(_RAISE)
                return
            if frame.kind == "with":
                self.edge(src, frame.entry_exc, EXCEPTION)
                return
        self.edge(src, self.exit_id, EXCEPTION)

    def _route_through_cleanup(
        self, src: int, request: str, floor: int
    ) -> bool:
        """Route an early exit through the innermost absorbing frame.

        Returns True when a cleanup frame absorbed the exit; False when
        the caller should wire ``src`` to the final target directly.
        Only frames at stack depth >= ``floor`` are considered (break/
        continue must not run cleanups outside their loop).
        """
        for index in range(len(self.cleanup) - 1, floor - 1, -1):
            frame = self.cleanup[index]
            if frame.kind == "except":
                continue  # returns/breaks do not trigger handlers
            self.edge(src, frame.entry, NORMAL)
            frame.pending.add(request)
            return True
        return False

    def route_return(self, src: int) -> None:
        if not self._route_through_cleanup(src, _RETURN, 0):
            self.edge(src, self.exit_id, NORMAL)

    def route_break(self, src: int) -> None:
        if not self.loops:  # malformed input; degrade to function exit
            self.edge(src, self.exit_id, NORMAL)
            return
        loop = self.loops[-1]
        if not self._route_through_cleanup(src, _BREAK, loop.depth):
            self.edge(src, loop.after, NORMAL)

    def route_continue(self, src: int) -> None:
        if not self.loops:
            self.edge(src, self.exit_id, NORMAL)
            return
        loop = self.loops[-1]
        if not self._route_through_cleanup(src, _CONTINUE, loop.depth):
            self.edge(src, loop.header, LOOP)

    # -- statement construction ---------------------------------------

    def build_body(
        self, stmts: Sequence[ast.stmt], preds: List[_End]
    ) -> List[_End]:
        for stmt in stmts:
            preds = self.build_stmt(stmt, preds)
        return preds

    def build_stmt(self, stmt: ast.stmt, preds: List[_End]) -> List[_End]:
        if isinstance(stmt, (ast.If,)):
            return self._build_if(stmt, preds)
        if isinstance(stmt, (ast.While,)):
            return self._build_loop(stmt, preds, header_can_raise=True)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, preds, header_can_raise=True)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, preds)
        if isinstance(stmt, ast.Try) or stmt.__class__.__name__ == "TryStar":
            return self._build_try(stmt, preds)
        match_type = getattr(ast, "Match", None)
        if match_type is not None and isinstance(stmt, match_type):
            return self._build_match(stmt, preds)

        block = self._leaf_block(stmt, preds)
        if isinstance(stmt, ast.Return):
            self.route_exception(block)  # the value expression can raise
            self.route_return(block)
            return []
        if isinstance(stmt, ast.Raise):
            self.route_exception(block)
            return []
        if isinstance(stmt, ast.Break):
            self.route_break(block)
            return []
        if isinstance(stmt, ast.Continue):
            self.route_continue(block)
            return []
        if not isinstance(stmt, _NO_RAISE):
            self.route_exception(block)
        return [(block, NORMAL)]

    def _leaf_block(self, stmt: ast.stmt, preds: List[_End]) -> int:
        block = self.new_block()
        self.blocks[block].statements.append(stmt)
        self.wire(preds, block)
        return block

    def _build_if(self, stmt: ast.If, preds: List[_End]) -> List[_End]:
        header = self._leaf_block(stmt, preds)
        self.route_exception(header)  # evaluating the test can raise
        body_ends = self.build_body(stmt.body, [(header, TRUE)])
        else_ends = self.build_body(stmt.orelse, [(header, FALSE)])
        return body_ends + else_ends

    def _build_loop(
        self,
        stmt: Union[ast.While, ast.For, ast.AsyncFor],
        preds: List[_End],
        header_can_raise: bool,
    ) -> List[_End]:
        header = self._leaf_block(stmt, preds)
        if header_can_raise:
            self.route_exception(header)
        after = self.new_block(label="loop-after", origin=stmt)
        self.loops.append(
            _LoopFrame(header=header, after=after, depth=len(self.cleanup))
        )
        body_ends = self.build_body(stmt.body, [(header, TRUE)])
        for src, _kind in body_ends:
            self.edge(src, header, LOOP)
        self.loops.pop()
        else_ends = self.build_body(stmt.orelse, [(header, FALSE)])
        self.wire(else_ends, after)
        return [(after, NORMAL)]

    def _build_with(
        self, stmt: Union[ast.With, ast.AsyncWith], preds: List[_End]
    ) -> List[_End]:
        header = self._leaf_block(stmt, preds)
        # The context expression / __enter__ can raise; if it does,
        # __exit__ never runs, so this edge bypasses the cleanup blocks.
        self.route_exception(header)
        normal_exit = self.new_block(label="with-exit", origin=stmt)
        exc_exit = self.new_block(label="with-except", origin=stmt)
        frame = _CleanupFrame(
            kind="with", entry=normal_exit, entry_exc=exc_exit
        )
        self.cleanup.append(frame)
        body_ends = self.build_body(stmt.body, [(header, NORMAL)])
        if body_ends:
            self.wire(body_ends, normal_exit)
            frame.pending.add(_FALL)
        self.cleanup.pop()
        # The exceptional exit runs __exit__ then re-raises outward.
        if self.blocks[exc_exit].preds:
            self.route_exception(exc_exit)
        results: List[_End] = []
        if _FALL in frame.pending:
            results.append((normal_exit, NORMAL))
        if _RETURN in frame.pending:
            self.route_return(normal_exit)
        if _BREAK in frame.pending:
            self.route_break(normal_exit)
        if _CONTINUE in frame.pending:
            self.route_continue(normal_exit)
        return results

    def _build_try(self, stmt: ast.Try, preds: List[_End]) -> List[_End]:
        has_finally = bool(stmt.finalbody)
        fin_frame: Optional[_CleanupFrame] = None
        fin_ends: List[_End] = []
        if has_finally:
            # Built *before* any frame is pushed: exceptions raised by
            # the finally body itself propagate in the outer context.
            fin_entry = self.new_block(label="finally-entry", origin=stmt)
            fin_ends = self.build_body(stmt.finalbody, [(fin_entry, NORMAL)])
            fin_frame = _CleanupFrame(kind="finally", entry=fin_entry)
            self.cleanup.append(fin_frame)

        # Handler bodies run under the finally frame but outside the
        # except frame (a handler's own exceptions are not re-caught).
        handler_entries: List[int] = []
        handler_ends: List[_End] = []
        for handler in stmt.handlers:
            entry = self.new_block(label="except-entry", origin=handler)
            handler_entries.append(entry)
            handler_ends.extend(
                self.build_body(handler.body, [(entry, NORMAL)])
            )

        if handler_entries:
            self.cleanup.append(
                _CleanupFrame(kind="except", handler_entries=handler_entries)
            )
        body_ends = self.build_body(stmt.body, preds)
        if handler_entries:
            self.cleanup.pop()
        # else-suite: runs on normal body completion, outside the
        # except frame.
        else_ends = self.build_body(stmt.orelse, body_ends)
        exits = else_ends + handler_ends

        if fin_frame is None:
            return exits
        self.cleanup.pop()
        if exits:
            self.wire(exits, fin_frame.entry)
            fin_frame.pending.add(_FALL)
        results: List[_End] = []
        if _FALL in fin_frame.pending:
            results.extend(fin_ends)
        if _RAISE in fin_frame.pending:
            for src, _kind in fin_ends:
                self.route_exception(src)
        if _RETURN in fin_frame.pending:
            for src, _kind in fin_ends:
                self.route_return(src)
        if _BREAK in fin_frame.pending:
            for src, _kind in fin_ends:
                self.route_break(src)
        if _CONTINUE in fin_frame.pending:
            for src, _kind in fin_ends:
                self.route_continue(src)
        return results

    def _build_match(self, stmt: ast.stmt, preds: List[_End]) -> List[_End]:
        header = self._leaf_block(stmt, preds)
        self.route_exception(header)
        ends: List[_End] = [(header, FALSE)]  # no case may match
        for case in stmt.cases:  # type: ignore[attr-defined]
            ends.extend(self.build_body(case.body, [(header, TRUE)]))
        return ends


def build_cfg(func: FunctionNode) -> CFG:
    """Build the control-flow graph of one function definition."""
    builder = _Builder(func)
    ends = builder.build_body(func.body, [(builder.entry_id, NORMAL)])
    builder.wire(ends, builder.exit_id)
    return CFG(
        func=func,
        blocks=builder.blocks,
        entry=builder.entry_id,
        exit=builder.exit_id,
    )
