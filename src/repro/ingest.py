"""Crash-safe online ingest: WAL-logged mutation of a built database.

The paper treats index construction as an offline step; this module
adds the maintenance plane a deployed system needs — appending new
sequences, extending existing ones, and deleting — without rebuilding,
and without losing committed work to a crash at any instruction.

Write path (:class:`IngestSession`)
-----------------------------------
Every mutation follows write-ahead discipline::

    log intent -> apply to store -> maintain indexes -> ... -> commit

* The intent record (full values payload, CRC-framed, LSN-stamped) goes
  into the :class:`~repro.storage.wal.WriteAheadLog` *before* any state
  changes.
* The mutation is applied to the :class:`~repro.storage.sequences.
  SequenceStore` (pager pages written or freed, stale buffer-pool
  entries invalidated), the DualMatch R*-tree (window entries inserted,
  or deleted with CondenseTree), and — when PSM's sliding index was
  built — the sliding R*-tree and its bloom filter.
* ``commit()`` appends the commit marker and issues the session's
  single fsync (group commit).  Only records covered by a commit marker
  are ever replayed.

An application error inside a session aborts it: the uncommitted WAL
tail is rolled back and the in-memory database must be considered
poisoned (partially applied), exactly as after a crash — reload or
:func:`recover_database` from the durable root to get back to the last
committed state.

Durable layout
--------------
::

    root/
      checkpoint/   last checkpoint (atomic format-v2 database dir,
                    meta.json carries the ``wal_lsn`` watermark)
      wal.log       records committed after that checkpoint

The WAL lives *beside* the checkpoint directory, never inside it — the
checkpoint is swapped atomically by ``os.replace`` and must not take
the log with it.

Recovery (:func:`recover_database`)
-----------------------------------
1. Load the checkpoint (full integrity verification, page-for-page
   pager reconstruction).
2. Open the WAL: the open-time scan discards the torn tail and any
   uncommitted records.
3. Replay committed batches in LSN order, skipping every record at or
   below the checkpoint's ``wal_lsn`` watermark (idempotence: a crash
   between checkpoint save and WAL truncation re-presents old records).

Replay drives the *same* apply functions as the live write path, over a
pager reconstructed page-for-page, so a recovered database is
byte-identical — results **and** page-access counts — to one that never
crashed.  The chaos harness (``repro chaos --suite ingest``) proves
this at every seeded crash point.

Checkpointing (:func:`checkpoint_database`)
-------------------------------------------
Saves the current state into ``root/checkpoint`` (atomic directory
swap, ``wal_lsn`` recorded in meta.json), then truncates the WAL to
that LSN.  A crash between the two steps is safe: recovery sees a
checkpoint whose watermark already covers the un-truncated records and
skips them.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.paa import paa
from repro.exceptions import (
    ConfigurationError,
    IndexNotBuiltError,
    PageError,
    SequenceNotFoundError,
    UsageError,
)
from repro.index.rstar import LeafRecord
from repro.storage.buffer import RetryPolicy
from repro.storage.sequences import SequenceStore
from repro.storage.wal import WriteAheadLog

if TYPE_CHECKING:
    from repro.api import SubsequenceDatabase
    from repro.core.clock import Clock
    from repro.storage.circuit import CircuitBreaker

#: File name of the write-ahead log inside a durable root.
WAL_NAME = "wal.log"

#: Directory name of the checkpoint database inside a durable root.
CHECKPOINT_NAME = "checkpoint"

PathLike = Union[str, pathlib.Path]


# ----------------------------------------------------------------------
# Apply functions — shared verbatim by the live write path and replay,
# which is what makes recovery deterministic.
# ----------------------------------------------------------------------


def _index_new_windows(
    db: "SubsequenceDatabase", sid: int, old_length: int
) -> None:
    """Insert index entries for windows completed by an append/extend.

    Appending values never moves existing grid windows (they cover
    prefixes of the unchanged old values), so maintenance is purely
    additive: windows ``[old_windows, new_windows)`` of the DualMatch
    tree, and sliding offsets past the old coverage for PSM.
    """
    index = db.index
    assert index is not None
    values = db.store.peek_full_sequence(sid)
    omega = index.omega
    stride = index.data_stride or omega

    def grid_windows(length: int) -> int:
        return 0 if length < omega else (length - omega) // stride + 1

    for window_index in range(grid_windows(old_length), grid_windows(values.size)):
        start = window_index * stride
        point = paa(values[start : start + omega], index.features)
        record = LeafRecord(sid=sid, window_index=window_index)
        index.tree.insert(point, record)
        index.note_window(record, point)

    sliding = db._sliding_index  # noqa: SLF001 — package-internal plane
    if sliding is not None:
        old_span = max(0, old_length - sliding.omega + 1)
        first_new = -(-old_span // sliding.stride) * sliding.stride
        for offset in range(
            first_new, values.size - sliding.omega + 1, sliding.stride
        ):
            point = paa(
                values[offset : offset + sliding.omega], sliding.features
            )
            sliding.tree.insert(point, LeafRecord(sid=sid, window_index=offset))
            sliding.bloom.add((sid, offset))


def _apply_append(
    db: "SubsequenceDatabase",
    sid: int,
    values: np.ndarray,
    session: Optional[object],
) -> None:
    db.store.add_sequence(sid, values, session=session)
    _index_new_windows(db, sid, old_length=0)


def _apply_extend(
    db: "SubsequenceDatabase",
    sid: int,
    values: np.ndarray,
    session: Optional[object],
) -> None:
    old_length = db.store.length(sid)
    db.store.extend_sequence(sid, values, session=session)
    _index_new_windows(db, sid, old_length=old_length)


def _apply_delete(
    db: "SubsequenceDatabase", sid: int, session: Optional[object]
) -> None:
    index = db.index
    assert index is not None
    values = db.store.peek_full_sequence(sid)
    omega = index.omega
    stride = index.data_stride or omega
    if values.size >= omega:
        num_windows = (values.size - omega) // stride + 1
        for window_index in range(num_windows):
            start = window_index * stride
            point = paa(values[start : start + omega], index.features)
            index.tree.delete(
                point, LeafRecord(sid=sid, window_index=window_index)
            )
    index.forget_sequence(sid)
    sliding = db._sliding_index  # noqa: SLF001
    if sliding is not None and values.size >= sliding.omega:
        for offset in range(
            0, values.size - sliding.omega + 1, sliding.stride
        ):
            point = paa(
                values[offset : offset + sliding.omega], sliding.features
            )
            sliding.tree.delete(
                point, LeafRecord(sid=sid, window_index=offset)
            )
        # The bloom filter keeps the deleted keys' bits: plain blooms
        # cannot unset, and a stale positive only costs PSM a probe —
        # the final alignment check is exact, so results are unaffected.
    db.store.remove_sequence(sid, session=session)


class IngestSession:
    """One WAL-logged group-commit of online mutations.

    Obtained from :meth:`~repro.api.SubsequenceDatabase.ingest`; usable
    as a context manager (commits on clean exit, rolls the WAL back on
    an application error)::

        with db.ingest() as session:
            session.append(7, values)
            session.extend(3, more_values)
            session.delete(5)
        # committed — durable after the session's single fsync

    A session without a WAL (``db`` not attached to a durable root)
    applies mutations in memory only; the chaos harness uses this mode
    to build its never-crashed oracle.
    """

    def __init__(
        self, db: "SubsequenceDatabase", wal: Optional[WriteAheadLog]
    ) -> None:
        if db.index is None:
            raise IndexNotBuiltError("call build() before ingest()")
        self._db = db
        self._wal = wal
        self._ops = 0
        self._closed = False
        #: LSN of this session's commit marker (``None`` until commit,
        #: and always ``None`` for WAL-less sessions).
        self.commit_lsn: Optional[int] = None

    @property
    def operations(self) -> int:
        """Number of mutations applied so far in this session."""
        return self._ops

    def _require_active(self) -> None:
        if self._closed:
            raise UsageError("ingest session is already closed")

    def _log(self, op: str, fields: dict) -> None:
        if self._wal is not None:
            self._wal.append(op, fields)

    # -- mutations -----------------------------------------------------

    def append(self, sid: int, values: Sequence[float]) -> None:
        """Add a brand-new sequence (intent logged before application)."""
        self._require_active()
        if self._db.store.has_sequence(sid):
            raise PageError(f"sequence id {sid} already stored")
        array = SequenceStore._validated(sid, values)  # noqa: SLF001
        self._log("append", {"sid": sid, "values": array.tolist()})
        _apply_append(self._db, sid, array, session=self)
        self._ops += 1

    def extend(self, sid: int, values: Sequence[float]) -> None:
        """Append values to an existing sequence."""
        self._require_active()
        if not self._db.store.has_sequence(sid):
            raise SequenceNotFoundError(
                f"sequence id {sid} is not in the store"
            )
        array = SequenceStore._validated(sid, values)  # noqa: SLF001
        self._log("extend", {"sid": sid, "values": array.tolist()})
        _apply_extend(self._db, sid, array, session=self)
        self._ops += 1

    def delete(self, sid: int) -> None:
        """Remove a sequence, its pages, and its index entries."""
        self._require_active()
        if not self._db.store.has_sequence(sid):
            raise SequenceNotFoundError(
                f"sequence id {sid} is not in the store"
            )
        self._log("delete", {"sid": sid})
        _apply_delete(self._db, sid, session=self)
        self._ops += 1

    # -- lifecycle -----------------------------------------------------

    def commit(self) -> Optional[int]:
        """Group-commit the session (one fsync); returns the commit LSN."""
        self._require_active()
        self._closed = True
        if self._wal is not None:
            self.commit_lsn = self._wal.commit()
            self._db._last_applied_lsn = self.commit_lsn  # noqa: SLF001
        # Keep the LRU buffer at its configured fraction of the (now
        # larger or smaller) page file — a database recovered from a
        # checkpoint sizes its buffer from the same page count, so
        # NUM_IO stays byte-identical across crash/recover boundaries.
        self._db.resize_buffer(self._db.buffer_fraction)
        return self.commit_lsn

    def abort(self) -> None:
        """Abandon the session: roll back its uncommitted WAL records.

        The in-memory database keeps whatever was already applied (like
        a crashed process's heap); the *durable* state is unaffected,
        and recovering from the durable root restores consistency.
        """
        if self._closed:
            return
        self._closed = True
        if self._wal is not None:
            self._wal.rollback()

    def __enter__(self) -> "IngestSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._closed:
            return
        if exc_type is None:
            self.commit()
        elif issubclass(exc_type, Exception):
            self.abort()
        # BaseException (SimulatedCrash, KeyboardInterrupt): behave like
        # the process died — touch nothing; the WAL open-time scan will
        # discard the uncommitted tail.


# ----------------------------------------------------------------------
# Durable root lifecycle
# ----------------------------------------------------------------------


def create_durable(
    db: "SubsequenceDatabase",
    root: PathLike,
    sync: bool = True,
    retry_policy: Optional[RetryPolicy] = None,
    clock: Optional["Clock"] = None,
    circuit_breaker: Optional["CircuitBreaker"] = None,
) -> WriteAheadLog:
    """Persist a built database as a durable root and attach its WAL.

    Writes the initial checkpoint (``root/checkpoint``) and an empty
    log (``root/wal.log``), then attaches the log to ``db`` so that
    :meth:`~repro.api.SubsequenceDatabase.ingest` sessions are durable.
    Returns the attached :class:`~repro.storage.wal.WriteAheadLog`.
    """
    from repro.storage.persistence import save_database

    if db.index is None:
        raise ConfigurationError("cannot create a durable root before build()")
    root_path = pathlib.Path(root)
    root_path.mkdir(parents=True, exist_ok=True)
    save_database(
        db,
        root_path / CHECKPOINT_NAME,
        extra_meta={"wal_lsn": db._last_applied_lsn},  # noqa: SLF001
    )
    wal = WriteAheadLog(
        root_path / WAL_NAME,
        retry_policy=retry_policy,
        clock=clock,
        circuit_breaker=circuit_breaker,
        sync=sync,
    )
    db.attach_wal(wal, root_path)
    return wal


def checkpoint_database(db: "SubsequenceDatabase") -> int:
    """Checkpoint a durable database and truncate its WAL.

    Saves the current in-memory state into ``root/checkpoint`` (atomic
    swap; meta.json records the ``wal_lsn`` watermark), then truncates
    the log to that LSN.  Crash points ``checkpoint.begin`` and
    ``checkpoint.after_save`` bracket the two steps for the chaos
    harness.  Returns the watermark LSN.
    """
    from repro.storage.persistence import save_database

    wal = db.wal
    root = db.durable_root
    if wal is None or root is None:
        raise UsageError(
            "checkpoint requires a durable root; call create_durable() "
            "or recover_database() first"
        )
    wal.crash_point("checkpoint.begin")
    watermark = wal.last_lsn
    save_database(
        db, root / CHECKPOINT_NAME, extra_meta={"wal_lsn": watermark}
    )
    wal.crash_point("checkpoint.after_save")
    wal.truncate(watermark)
    if wal.tracer.enabled:
        wal.tracer.metrics.counter("checkpoint").inc()
    return watermark


@dataclass(frozen=True)
class RecoveryReport:
    """What :func:`recover_database` did."""

    #: ``wal_lsn`` watermark the loaded checkpoint carried.
    checkpoint_lsn: int
    #: Committed batches replayed over the checkpoint.
    replayed_batches: int
    #: Operation records replayed (commit markers excluded).
    replayed_records: int
    #: Torn bytes the WAL open-time scan discarded.
    torn_bytes_discarded: int
    #: LSN the recovered database is consistent through.
    effective_lsn: int


def recover_database(
    root: PathLike,
    psm: bool = False,
    sync: bool = True,
    retry_policy: Optional[RetryPolicy] = None,
    clock: Optional["Clock"] = None,
    circuit_breaker: Optional["CircuitBreaker"] = None,
    backend: Optional[object] = None,
):
    """Roll a durable root forward to its last committed state.

    Returns ``(db, report)``: the recovered
    :class:`~repro.api.SubsequenceDatabase` (WAL attached, ready for
    further ingest) and a :class:`RecoveryReport`.

    Safe to run at any time — on a cleanly checkpointed root it replays
    nothing.  Replay is idempotent: records at or below the
    checkpoint's ``wal_lsn`` watermark (re-presented when a crash hit
    between checkpoint save and WAL truncation) are skipped.

    ``backend`` selects the storage backend the recovered database
    runs on (see :func:`repro.storage.backends.resolve_backend`);
    replayed mutations land on heap pages regardless, so a zero-copy
    backend only serves the checkpointed prefix from its map.
    """
    from repro.storage.persistence import load_database

    root_path = pathlib.Path(root)
    checkpoint = root_path / CHECKPOINT_NAME
    db = load_database(checkpoint, psm=psm, backend=backend)
    meta = json.loads((checkpoint / "meta.json").read_text())
    checkpoint_lsn = int(meta.get("wal_lsn", 0))

    wal = WriteAheadLog(
        root_path / WAL_NAME,
        retry_policy=retry_policy,
        clock=clock,
        circuit_breaker=circuit_breaker,
        sync=sync,
    )
    try:
        return _finish_recovery(db, wal, root_path, checkpoint_lsn)
    except BaseException:
        # Replay failed before the database took ownership of the
        # handle; close it so the torn root can be reopened.
        wal.close()
        raise


def _finish_recovery(
    db: "SubsequenceDatabase",
    wal: WriteAheadLog,
    root_path: pathlib.Path,
    checkpoint_lsn: int,
) -> Tuple["SubsequenceDatabase", RecoveryReport]:
    """Replay the committed WAL suffix and attach the handle to ``db``."""
    tracer = db.tracer
    replayed_batches = 0
    replayed_records = 0
    effective_lsn = checkpoint_lsn

    def replay() -> None:
        nonlocal replayed_batches, replayed_records, effective_lsn
        for batch in wal.replay():
            if batch.commit_lsn <= checkpoint_lsn:
                continue  # already inside the checkpoint
            for record in batch.records:
                if record.lsn <= checkpoint_lsn:
                    continue
                if record.op == "append":
                    _apply_append(
                        db,
                        int(record.fields["sid"]),
                        np.asarray(record.fields["values"], dtype=np.float64),
                        session=wal,
                    )
                elif record.op == "extend":
                    _apply_extend(
                        db,
                        int(record.fields["sid"]),
                        np.asarray(record.fields["values"], dtype=np.float64),
                        session=wal,
                    )
                elif record.op == "delete":
                    _apply_delete(
                        db, int(record.fields["sid"]), session=wal
                    )
                replayed_records += 1
                if tracer.enabled:
                    tracer.metrics.counter("recover.replay").inc()
            replayed_batches += 1
            effective_lsn = batch.commit_lsn

    if tracer.enabled:
        with tracer.span("recover.replay", root=str(root_path)):
            replay()
    else:
        replay()

    db._last_applied_lsn = effective_lsn  # noqa: SLF001
    db.attach_wal(wal, root_path)
    # Match the live write path: buffer capacity tracks the page count
    # (IngestSession.commit() resizes), and recovery hands back a cold
    # cache with zeroed counters.
    db.resize_buffer(db.buffer_fraction)
    db.reset_cache()
    report = RecoveryReport(
        checkpoint_lsn=checkpoint_lsn,
        replayed_batches=replayed_batches,
        replayed_records=replayed_records,
        torn_bytes_discarded=wal.torn_bytes_discarded,
        effective_lsn=effective_lsn,
    )
    return db, report
