"""Per-tenant quality-of-service state for the query service.

Each tenant (a named client of :class:`~repro.serve.service.QueryService`)
carries three pieces of admission state:

* a :class:`QosClass` deciding its scheduling priority and its
  degradation tier under saturation,
* a :class:`TokenBucket` rate limiter bounding its sustained request
  rate (so one chatty tenant cannot monopolise the queue), and
* a per-tenant :class:`~repro.storage.circuit.CircuitBreaker` over
  query *outcomes* — a tenant whose queries keep failing against
  storage is cut off early instead of burning worker time.

All classes here are shared across every service thread and annotated
with the PR 7 concurrency contracts; lint rules RS010–RS012 verify the
locking discipline statically.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.concurrency import (
    guarded_by,
    requires_lock,
    shared_across_queries,
)
from repro.core.clock import MONOTONIC_CLOCK, Clock
from repro.exceptions import ConfigurationError
from repro.storage.circuit import CircuitBreaker


class QosClass(enum.IntEnum):
    """Scheduling class; lower value = higher priority.

    The integer value is also the aging multiplier in
    :class:`~repro.serve.queue.AgingPriorityQueue`: a ``BATCH`` request
    is scheduled as if it arrived ``2 * aging_interval_s`` later than
    an ``INTERACTIVE`` request submitted at the same instant — so
    better classes win ties, but an old request of *any* class
    eventually outranks fresh traffic (no starvation).
    """

    INTERACTIVE = 0
    STANDARD = 1
    BATCH = 2


@shared_across_queries
@guarded_by("_lock", "_tokens", "_last_refill")
class TokenBucket:
    """Classic token-bucket rate limiter on an injectable clock.

    ``rate`` tokens accrue per second up to ``burst``; each admitted
    request spends one.  :meth:`try_acquire` never blocks — on an empty
    bucket it returns the exact wait until a token accrues, which the
    service forwards to clients as a retry-after hint.

    Thread safety: token count and refill timestamp are a single
    check-then-act unit, guarded by ``_lock``.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Optional[Clock] = None,
    ) -> None:
        if rate <= 0:
            raise ConfigurationError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock if clock is not None else MONOTONIC_CLOCK
        self._lock = threading.Lock()
        self._tokens = float(burst)
        self._last_refill = self._clock.monotonic()

    @requires_lock("_lock")
    def _refill_locked(self, now: float) -> None:
        elapsed = max(0.0, now - self._last_refill)
        self._last_refill = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, cost: float = 1.0) -> float:
        """Spend ``cost`` tokens if available.

        Returns ``0.0`` on success, otherwise the seconds until the
        bucket will hold ``cost`` tokens (a retry-after hint; the
        tokens are *not* spent on failure).
        """
        if cost <= 0:
            raise ConfigurationError(f"cost must be > 0, got {cost}")
        with self._lock:
            now = self._clock.monotonic()
            self._refill_locked(now)
            if self._tokens >= cost:
                self._tokens -= cost
                return 0.0
            return (cost - self._tokens) / self.rate

    @property
    def available(self) -> float:
        """Tokens currently in the bucket (after a refill)."""
        with self._lock:
            self._refill_locked(self._clock.monotonic())
            return self._tokens


@dataclass(frozen=True)
class TenantPolicy:
    """Static admission policy for one tenant (or the default).

    Attributes
    ----------
    qos:
        Scheduling class; see :class:`QosClass`.
    rate:
        Sustained requests per second through the token bucket.
    burst:
        Bucket depth — requests a quiet tenant may issue back-to-back.
    breaker_threshold / breaker_window / breaker_min_samples /
    breaker_reset_s:
        Per-tenant circuit-breaker tuning (failure fraction over the
        outcome window; see :class:`~repro.storage.circuit.CircuitBreaker`).
    """

    qos: QosClass = QosClass.STANDARD
    rate: float = 50.0
    burst: float = 20.0
    breaker_threshold: float = 0.6
    breaker_window: int = 10
    breaker_min_samples: int = 4
    breaker_reset_s: float = 1.0

    def make_breaker(self, clock: Optional[Clock] = None) -> CircuitBreaker:
        """Build this policy's circuit breaker on ``clock``."""
        return CircuitBreaker(
            failure_threshold=self.breaker_threshold,
            window=self.breaker_window,
            min_samples=self.breaker_min_samples,
            reset_timeout_s=self.breaker_reset_s,
            clock=clock,
        )


@dataclass
class TenantCounters:
    """Per-tenant outcome counters (all updates under the tenant lock)."""

    submitted: int = 0
    completed: int = 0
    partial: int = 0
    rejected_rate: int = 0
    rejected_breaker: int = 0
    shed: int = 0
    faults: int = 0


@shared_across_queries
@guarded_by("_lock", "counters")
class TenantState:
    """Live admission state for one tenant.

    The token bucket and circuit breaker are internally locked; the
    mutable counters here are guarded by this object's own ``_lock``.
    """

    def __init__(
        self,
        name: str,
        policy: TenantPolicy,
        clock: Optional[Clock] = None,
    ) -> None:
        self.name = name
        self.policy = policy
        self.bucket = TokenBucket(policy.rate, policy.burst, clock=clock)
        self.breaker = policy.make_breaker(clock=clock)
        self._lock = threading.Lock()
        self.counters = TenantCounters()

    def count(self, field_name: str, amount: int = 1) -> None:
        """Bump one :class:`TenantCounters` field thread-safely."""
        with self._lock:
            setattr(
                self.counters,
                field_name,
                getattr(self.counters, field_name) + amount,
            )

    def snapshot(self) -> TenantCounters:
        """A consistent copy of the counters."""
        with self._lock:
            return TenantCounters(**vars(self.counters))


@shared_across_queries
@guarded_by("_lock", "_tenants")
class TenantRegistry:
    """Name → :class:`TenantState` map with lazy creation.

    ``get_or_create`` is the only way tenants come into being, so the
    check-then-act on the map is guarded by ``_lock``; the returned
    :class:`TenantState` objects are themselves thread-safe and may be
    used outside the registry lock.
    """

    def __init__(
        self,
        default_policy: Optional[TenantPolicy] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.default_policy = (
            default_policy if default_policy is not None else TenantPolicy()
        )
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: Dict[str, TenantState] = {}

    def get_or_create(
        self, name: str, policy: Optional[TenantPolicy] = None
    ) -> TenantState:
        """The tenant's state, creating it on first sight.

        ``policy`` only applies at creation; an existing tenant keeps
        the policy it was created with (use :meth:`set_policy` to
        replace it).
        """
        with self._lock:
            state = self._tenants.get(name)
            if state is None:
                state = TenantState(
                    name,
                    policy if policy is not None else self.default_policy,
                    clock=self._clock,
                )
                self._tenants[name] = state
            return state

    def set_policy(self, name: str, policy: TenantPolicy) -> TenantState:
        """(Re)create ``name`` with ``policy``, resetting its state."""
        with self._lock:
            state = TenantState(name, policy, clock=self._clock)
            self._tenants[name] = state
            return state

    def names(self) -> List[str]:
        """Known tenant names, sorted."""
        with self._lock:
            return sorted(self._tenants)
