"""Bounded admission queue with priority aging and QoS-aware shedding.

The scheduling key is **static**: a request enqueued at time ``t`` with
QoS class ``q`` is ordered by ``t + q * aging_interval_s`` (ties broken
by arrival).  That single formula gives both properties the service
needs, with heap-stable keys (no re-heapify, no priority churn):

* *Priority*: at equal enqueue times, a better class (lower ``q``)
  always dequeues first.
* *No starvation*: a ``BATCH`` request enqueued at ``t`` outranks every
  ``INTERACTIVE`` request that arrives after
  ``t + 2 * aging_interval_s`` — waiting converts 1:1 into priority, so
  any request's dequeue is bounded by the traffic ahead of it at
  enqueue time plus a constant-size window of later arrivals.

Overflow policy (``capacity`` reached) is shed-lowest-QoS-first: if the
incoming request's class is strictly better than the worst class
currently queued, the *newest* request of that worst class is evicted
(the caller fails it with ``ServiceOverloadedError("queue-shed")``);
otherwise the incoming request itself is rejected with
``ServiceOverloadedError("queue-full")``.  Either way exactly one
request loses, with a typed, retry-after-carrying error — never a
silent drop.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.analysis.concurrency import (
    guarded_by,
    requires_lock,
    shared_across_queries,
)
from repro.core.clock import MONOTONIC_CLOCK, Clock
from repro.exceptions import ConfigurationError, ServiceOverloadedError
from repro.serve.tenants import QosClass


@dataclass
class QueueStats:
    """Counters for one :class:`AgingPriorityQueue`."""

    enqueued: int = 0
    dequeued: int = 0
    #: Queued requests evicted to make room for a better QoS class.
    shed: int = 0
    #: Incoming requests rejected because nothing worse could be shed.
    rejected_full: int = 0
    peak_depth: int = 0


@shared_across_queries
@guarded_by("_lock", "_heap", "_seq", "_closed", "stats")
class AgingPriorityQueue:
    """Bounded, starvation-free priority queue for pending queries.

    Items are opaque to the queue; each carries the :class:`QosClass`
    it was enqueued under.  ``get`` blocks (with timeout) until an item
    is available or the queue is closed.

    Thread safety: the heap, sequence counter, and stats are guarded by
    ``_lock`` (a :class:`threading.Condition` doubling as the mutex).
    Per lint rule RS013, no caller may hold this lock across engine
    execution — the queue hands items out and nothing more.
    """

    def __init__(
        self,
        capacity: int,
        aging_interval_s: float = 0.25,
        clock: Optional[Clock] = None,
        retry_after_hint_s: float = 0.1,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {capacity}"
            )
        if aging_interval_s <= 0:
            raise ConfigurationError(
                f"aging_interval_s must be > 0, got {aging_interval_s}"
            )
        if retry_after_hint_s < 0:
            raise ConfigurationError(
                f"retry_after_hint_s must be >= 0, got {retry_after_hint_s}"
            )
        self.capacity = capacity
        self.aging_interval_s = float(aging_interval_s)
        self.retry_after_hint_s = float(retry_after_hint_s)
        self._clock = clock if clock is not None else MONOTONIC_CLOCK
        self._lock = threading.Condition()
        #: Heap of (key, seq, qos_value, item); key = enqueue time +
        #: qos * aging_interval_s, fixed at enqueue (heap-stable).
        self._heap: List[Tuple[float, int, int, Any]] = []
        self._seq = 0
        self._closed = False
        self.stats = QueueStats()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def put(self, item: Any, qos: QosClass) -> Optional[Any]:
        """Enqueue ``item`` under ``qos``.

        Returns ``None`` normally.  When the queue is full and ``item``
        outranks the worst queued class, the evicted item is returned —
        the caller must fail it with a ``"queue-shed"`` overload error
        (completing a stranger's future is the caller's job; doing it
        under the queue lock would violate RS013).  When nothing can be
        shed, raises :class:`~repro.exceptions.ServiceOverloadedError`
        with reason ``"queue-full"``.
        """
        with self._lock:
            if self._closed:
                raise ServiceOverloadedError("shutdown")
            shed_item: Optional[Any] = None
            if len(self._heap) >= self.capacity:
                victim_index = self._worst_index_locked()
                victim_qos = self._heap[victim_index][2]
                if int(qos) < victim_qos:
                    shed_item = self._heap[victim_index][3]
                    self._heap[victim_index] = self._heap[-1]
                    self._heap.pop()
                    heapq.heapify(self._heap)
                    self.stats.shed += 1
                else:
                    self.stats.rejected_full += 1
                    raise ServiceOverloadedError(
                        "queue-full",
                        retry_after_s=self._retry_after_locked(),
                    )
            key = (
                self._clock.monotonic() + int(qos) * self.aging_interval_s
            )
            heapq.heappush(self._heap, (key, self._seq, int(qos), item))
            self._seq += 1
            self.stats.enqueued += 1
            self.stats.peak_depth = max(
                self.stats.peak_depth, len(self._heap)
            )
            self._lock.notify()
            return shed_item

    @requires_lock("_lock")
    def _worst_index_locked(self) -> int:
        """Heap index of the shed victim: worst class, newest arrival."""
        return max(
            range(len(self._heap)),
            key=lambda i: (self._heap[i][2], self._heap[i][1]),
        )

    @requires_lock("_lock")
    def _retry_after_locked(self) -> float:
        """Back-off hint for a full-queue rejection.

        Scales with depth: a caller bounced off a deep queue should
        wait proportionally longer than one bounced off a shallow one.
        """
        return self.retry_after_hint_s * max(1, len(self._heap))

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------

    def get(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Dequeue the best-keyed item, blocking up to ``timeout``.

        Returns ``None`` on timeout or when the queue is closed and
        drained — the worker loop treats both as "poll again / exit".
        """
        with self._lock:
            ready = self._lock.wait_for(
                lambda: self._heap or self._closed, timeout=timeout
            )
            if not ready or not self._heap:
                return None
            _, _, _, item = heapq.heappop(self._heap)
            self.stats.dequeued += 1
            return item

    @property
    def depth(self) -> int:
        """Items currently queued."""
        with self._lock:
            return len(self._heap)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def close(self) -> List[Any]:
        """Refuse new work and return every still-queued item (in key
        order) so the caller can fail them with ``"shutdown"`` errors.

        Blocked :meth:`get` callers wake and observe ``None``.
        """
        with self._lock:
            self._closed = True
            drained = [
                entry[3] for entry in sorted(self._heap)
            ]
            self._heap.clear()
            self._lock.notify_all()
            return drained
