"""JSON-lines wire protocol for the query service.

One request per line, one (or, for streams, several) response lines
back.  Requests are plain JSON objects::

    {"kind": "knn", "query": [..], "k": 5, "method": "ru-cost",
     "tenant": "ops", "timeout_s": 0.5, "id": 17}

``kind`` is ``"knn"``, ``"range"``, or ``"stream"``.  Responses echo
``id`` and carry ``"ok"``: a ``true`` response holds matches, status
(``"exact"`` / ``"partial"``), stats, and optionally a profile; a
``false`` response is a typed error with ``reason`` and, for overload,
``retry_after_s``.  Stream responses interleave ``{"match": [...]}``
lines before the final summary line (``"final": true``).

Parsing is strict: anything malformed raises
:class:`~repro.exceptions.ProtocolError` *before* the request touches
the query layer, and is reported to the client as an error response —
a bad client can never crash or wedge a worker.

The exactness certificate of a partial result is serialised as
``null`` when infinite (strict JSON has no ``Infinity``); decoding maps
it back to ``inf``.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.engines.base import PartialResult, SearchResult
from repro.exceptions import (
    AdmissionRejectedError,
    ProtocolError,
    ReproError,
    ServiceOverloadedError,
)

#: Engine names accepted in ``"method"`` (mirrors repro.api._METHODS;
#: kept literal here so the wire layer has no import-time dependency on
#: the API module).
METHODS = ("seqscan", "hlmj", "hlmj-wg", "psm", "ru", "ru-cost")

KINDS = ("knn", "range", "stream")

_ON_FAULT = ("raise", "degrade")


@dataclass(frozen=True)
class QueryRequest:
    """One validated service request (wire or in-process)."""

    kind: str
    query: Tuple[float, ...]
    tenant: str = "default"
    request_id: Optional[Any] = None
    k: int = 10
    epsilon: float = 0.0
    method: str = "ru-cost"
    rho: Optional[int] = None
    deferred: bool = False
    timeout_s: Optional[float] = None
    max_pages: Optional[int] = None
    max_candidates: Optional[int] = None
    on_fault: str = "degrade"
    profile: bool = False


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def _float_field(
    obj: Dict[str, Any], name: str, allow_none: bool = True
) -> Optional[float]:
    value = obj.get(name)
    if value is None:
        _require(allow_none, f"missing required field {name!r}")
        return None
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{name!r} must be a number, got {type(value).__name__}",
    )
    result = float(value)
    _require(math.isfinite(result), f"{name!r} must be finite")
    return result


def _int_field(
    obj: Dict[str, Any], name: str, default: Optional[int]
) -> Optional[int]:
    value = obj.get(name, default)
    if value is None:
        return None
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        f"{name!r} must be an integer, got {type(value).__name__}",
    )
    return value


def parse_request(obj: Any) -> QueryRequest:
    """Validate one decoded JSON object into a :class:`QueryRequest`.

    Raises :class:`~repro.exceptions.ProtocolError` on any shape,
    type, or range violation; the error message names the offending
    field.
    """
    _require(isinstance(obj, dict), "request must be a JSON object")
    kind = obj.get("kind", "knn")
    _require(
        kind in KINDS, f"kind must be one of {KINDS}, got {kind!r}"
    )
    raw_query = obj.get("query")
    _require(
        isinstance(raw_query, (list, tuple)) and len(raw_query) > 0,
        "query must be a non-empty array of numbers",
    )
    query: List[float] = []
    for index, value in enumerate(raw_query):
        _require(
            isinstance(value, (int, float)) and not isinstance(value, bool),
            f"query[{index}] must be a number",
        )
        item = float(value)
        _require(math.isfinite(item), f"query[{index}] must be finite")
        query.append(item)

    tenant = obj.get("tenant", "default")
    _require(
        isinstance(tenant, str) and tenant != "",
        "tenant must be a non-empty string",
    )

    k = _int_field(obj, "k", 10)
    assert k is not None
    _require(k >= 1, f"k must be >= 1, got {k}")

    epsilon = 0.0
    if kind == "range":
        parsed_epsilon = _float_field(obj, "epsilon", allow_none=False)
        assert parsed_epsilon is not None
        epsilon = parsed_epsilon
        _require(epsilon >= 0, f"epsilon must be >= 0, got {epsilon}")

    method = obj.get("method", "ru-cost")
    _require(
        method in METHODS,
        f"method must be one of {METHODS}, got {method!r}",
    )

    rho = _int_field(obj, "rho", None)
    _require(rho is None or rho >= 0, f"rho must be >= 0, got {rho}")

    timeout_s = _float_field(obj, "timeout_s")
    _require(
        timeout_s is None or timeout_s > 0,
        f"timeout_s must be > 0, got {timeout_s}",
    )

    max_pages = _int_field(obj, "max_pages", None)
    _require(
        max_pages is None or max_pages >= 0,
        f"max_pages must be >= 0, got {max_pages}",
    )
    max_candidates = _int_field(obj, "max_candidates", None)
    _require(
        max_candidates is None or max_candidates >= 0,
        f"max_candidates must be >= 0, got {max_candidates}",
    )

    on_fault = obj.get("on_fault", "degrade")
    _require(
        on_fault in _ON_FAULT,
        f"on_fault must be one of {_ON_FAULT}, got {on_fault!r}",
    )

    deferred = obj.get("deferred", False)
    _require(isinstance(deferred, bool), "deferred must be a boolean")
    profile = obj.get("profile", False)
    _require(isinstance(profile, bool), "profile must be a boolean")

    return QueryRequest(
        kind=kind,
        query=tuple(query),
        tenant=tenant,
        request_id=obj.get("id"),
        k=k,
        epsilon=epsilon,
        method=method,
        rho=rho,
        deferred=deferred,
        timeout_s=timeout_s,
        max_pages=max_pages,
        max_candidates=max_candidates,
        on_fault=on_fault,
        profile=profile,
    )


def parse_request_line(line: str) -> QueryRequest:
    """Parse one raw protocol line (JSON decode + validation)."""
    try:
        obj = json.loads(line)
    except ValueError as error:
        raise ProtocolError(f"request is not valid JSON: {error}") from None
    return parse_request(obj)


# ----------------------------------------------------------------------
# Encoding (server -> client)
# ----------------------------------------------------------------------


def _encode_matches(result: SearchResult) -> List[List[float]]:
    return [
        [match.sid, match.start, match.length, match.distance]
        for match in result.matches
    ]


def encode_response(response: Any) -> Dict[str, Any]:
    """Encode a :class:`~repro.serve.service.ServiceResponse` as the
    final JSON-able response object."""
    result: SearchResult = response.result
    partial = isinstance(result, PartialResult)
    payload: Dict[str, Any] = {
        "ok": True,
        "final": True,
        "id": response.request_id,
        "kind": response.kind,
        "tenant": response.tenant,
        "status": "partial" if partial else "exact",
        "matches": _encode_matches(result),
        "degraded": result.degraded,
        "stats": asdict(result.stats),
        "queue_wait_s": response.queue_wait_s,
        "execution_s": response.execution_s,
        "degradation_tier": response.degradation_tier,
    }
    if partial:
        assert isinstance(result, PartialResult)
        payload["reason"] = result.reason
        payload["certificate"] = (
            None if math.isinf(result.certificate) else result.certificate
        )
    if result.fault_report is not None:
        payload["faults"] = result.fault_report.total
    if result.profile is not None and response.want_profile:
        payload["profile"] = result.profile.as_dict()
    return payload


def encode_match_line(
    request_id: Optional[Any], match: Any
) -> Dict[str, Any]:
    """One interleaved stream-match line (``"final"`` absent/false)."""
    return {
        "ok": True,
        "final": False,
        "id": request_id,
        "match": [match.sid, match.start, match.length, match.distance],
    }


def encode_error(
    error: BaseException, request_id: Optional[Any] = None
) -> Dict[str, Any]:
    """Encode any failure as a typed error response object."""
    payload: Dict[str, Any] = {
        "ok": False,
        "final": True,
        "id": request_id,
        "error": type(error).__name__,
        "message": str(error),
    }
    reason = getattr(error, "reason", None)
    if reason is not None:
        payload["reason"] = reason
    retry_after = getattr(error, "retry_after_s", None)
    if retry_after is not None:
        payload["retry_after_s"] = retry_after
    return payload


# ----------------------------------------------------------------------
# Decoding (client side)
# ----------------------------------------------------------------------

#: Error names mapped back to typed exceptions on the client.
_ERROR_TYPES = {
    "ProtocolError": ProtocolError,
    "ServiceOverloadedError": ServiceOverloadedError,
    "AdmissionRejectedError": AdmissionRejectedError,
}


def decode_response(obj: Dict[str, Any]) -> Dict[str, Any]:
    """Interpret one decoded response object on the client side.

    Returns the object unchanged when ``ok`` is true (mapping a
    ``null`` certificate back to ``inf``); raises the typed exception
    an error response encodes (:class:`ServiceOverloadedError` keeps
    its ``reason`` and ``retry_after_s``), or plain
    :class:`~repro.exceptions.ReproError` for server-side failures
    without a dedicated client-side type.
    """
    if not isinstance(obj, dict):
        raise ProtocolError("response must be a JSON object")
    if obj.get("ok"):
        if obj.get("certificate", "absent") is None:
            obj = dict(obj)
            obj["certificate"] = math.inf
        return obj
    name = obj.get("error", "ReproError")
    message = obj.get("message", "service error")
    if name == "ServiceOverloadedError":
        raise ServiceOverloadedError(
            obj.get("reason", "unknown"),
            retry_after_s=obj.get("retry_after_s"),
            message=message,
        )
    exc_type = _ERROR_TYPES.get(name, ReproError)
    raise exc_type(message)
