"""The embeddable threaded query service.

:class:`QueryService` is the robustness layer between many concurrent
clients and one :class:`~repro.api.SubsequenceDatabase`:

* Requests enter through per-tenant gates (token bucket, circuit
  breaker), land in an :class:`~repro.serve.queue.AgingPriorityQueue`,
  and are executed by a fixed worker pool behind the shared
  :class:`~repro.control.AdmissionController` — whose wakeup order is
  ``(priority, arrival)``, so queue-level aging survives end to end.
* QoS classes map onto the library's cooperative control plane:
  deadlines start at *submit* time (queue wait counts against the
  client's timeout), budgets tighten under saturation, and every
  limit trip surfaces as a :class:`~repro.engines.base.PartialResult`
  with a sound exactness certificate — never a crash, never a silent
  drop.
* Every overload path raises a typed
  :class:`~repro.exceptions.ServiceOverloadedError` carrying a
  retry-after hint; storage faults feed the tenant's breaker so a
  fault-hammering tenant is cut off instead of burning workers.

Worker loops follow lint rule RS013: each outer loop calls
``checkpoint()`` (so shutdown is cooperative and prompt) and no service
lock is ever held across engine execution.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.analysis.concurrency import (
    guarded_by,
    shared_across_queries,
)
from repro.control import (
    AdmissionController,
    CancellationToken,
    Deadline,
    QueryBudget,
)
from repro.core.clock import MONOTONIC_CLOCK, Clock
from repro.core.results import Match
from repro.engines.base import PartialResult, SearchResult
from repro.exceptions import (
    AdmissionRejectedError,
    CircuitOpenError,
    ConfigurationError,
    ExecutionInterrupted,
    ReproError,
    ServiceOverloadedError,
    StorageError,
    UsageError,
)
from repro.serve.protocol import QueryRequest
from repro.serve.queue import AgingPriorityQueue
from repro.serve.tenants import QosClass, TenantRegistry, TenantState

#: Default saturation budgets: pages a query may touch, per QoS class,
#: once the queue crosses the degradation watermark.  ``None`` =
#: uncapped (interactive traffic keeps full exactness; batch traffic
#: absorbs the squeeze and gets certificate-carrying partials).
DEFAULT_DEGRADED_PAGE_BUDGETS: Dict[QosClass, Optional[int]] = {
    QosClass.INTERACTIVE: None,
    QosClass.STANDARD: 4096,
    QosClass.BATCH: 1024,
}


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning for one :class:`QueryService`.

    Attributes
    ----------
    workers:
        Executor threads (also the admission concurrency unless
        ``max_concurrent`` overrides it).
    queue_capacity:
        Bounded depth of the aging priority queue.
    aging_interval_s:
        Seconds of queue age that equal one QoS class step (see
        :mod:`repro.serve.queue`).
    default_timeout_s:
        Deadline applied when a request carries none (``None`` = no
        server-side deadline).
    saturation_watermark:
        Queue-depth fraction at which degradation tier 1 engages and
        per-QoS page budgets apply.
    degraded_page_budgets:
        Tier-1 page caps per QoS class (``None`` value = uncapped).
    queue_poll_s:
        Worker poll interval on the queue — bounds shutdown latency.
    retry_after_hint_s:
        Base back-off hint attached to queue-full / shed rejections.
    """

    workers: int = 4
    queue_capacity: int = 64
    aging_interval_s: float = 0.25
    default_timeout_s: Optional[float] = None
    max_concurrent: Optional[int] = None
    saturation_watermark: float = 0.5
    degraded_page_budgets: Optional[Dict[QosClass, Optional[int]]] = None
    queue_poll_s: float = 0.05
    retry_after_hint_s: float = 0.1

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )
        if not 0.0 < self.saturation_watermark <= 1.0:
            raise ConfigurationError(
                f"saturation_watermark must be in (0, 1], got "
                f"{self.saturation_watermark}"
            )
        if self.queue_poll_s <= 0:
            raise ConfigurationError(
                f"queue_poll_s must be > 0, got {self.queue_poll_s}"
            )

    def page_budgets(self) -> Dict[QosClass, Optional[int]]:
        if self.degraded_page_budgets is not None:
            return self.degraded_page_budgets
        return DEFAULT_DEGRADED_PAGE_BUDGETS


@dataclass
class ServiceStats:
    """Service-wide counters (guarded by the service lock)."""

    submitted: int = 0
    completed: int = 0
    #: Completed responses that were :class:`PartialResult`.
    partial: int = 0
    #: Requests that completed with an exception (typed error response).
    errors: int = 0
    #: Submissions rejected before enqueue (overload / tenant gates).
    rejected: int = 0
    #: Queued requests evicted for a better QoS class.
    shed: int = 0
    peak_inflight: int = 0


@dataclass(frozen=True)
class ServiceResponse:
    """One completed request: the engine result plus service context."""

    request_id: Optional[Any]
    kind: str
    tenant: str
    result: SearchResult
    queue_wait_s: float
    execution_s: float
    #: 0 = normal, 1 = saturated (per-QoS page budgets applied).
    degradation_tier: int
    want_profile: bool = False

    @property
    def partial(self) -> bool:
        return isinstance(self.result, PartialResult)

    @property
    def exact(self) -> bool:
        """True when the response provably equals the exact answer."""
        result = self.result
        if isinstance(result, PartialResult):
            return result.exact and not result.degraded
        return not result.degraded


@dataclass
class PendingQuery:
    """A submitted request travelling through the service.

    The future resolves to a :class:`ServiceResponse`, or raises the
    typed error that ended the request (overload, storage fault, …).
    ``cancel()`` is cooperative: an already-running query stops at its
    next engine checkpoint and still resolves — to a
    :class:`~repro.engines.base.PartialResult` with reason
    ``"cancelled"`` — so a cancelling client always gets an accounted
    answer, never a dangling future.
    """

    request: QueryRequest
    tenant: TenantState
    qos: QosClass
    enqueue_time: float
    deadline: Optional[Deadline]
    token: CancellationToken
    future: "Future[ServiceResponse]" = field(default_factory=Future)
    #: Streaming hook: called once per emitted match, from the worker
    #: thread, before the final response resolves.
    on_match: Optional[Callable[[Match], None]] = None

    def cancel(self) -> None:
        self.token.cancel()

    def result(self, timeout: Optional[float] = None) -> ServiceResponse:
        """Block for the response (raises what the request raised)."""
        return self.future.result(timeout=timeout)


@shared_across_queries
class ShutdownControl:
    """Cooperative stop signal for service loops.

    Mirrors the engine-side checkpoint protocol
    (:meth:`~repro.control.ExecutionControl.checkpoint`): every outer
    service loop calls :meth:`checkpoint` once per iteration (lint rule
    RS013), and after :meth:`stop` the next checkpoint raises
    :class:`~repro.exceptions.ExecutionInterrupted` with reason
    ``"shutdown"``.  Backed by a :class:`threading.Event`, so it is
    safely shared across every worker and session thread.
    """

    def __init__(self) -> None:
        self._stop = threading.Event()

    def stop(self) -> None:
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def checkpoint(self) -> None:
        if self._stop.is_set():
            raise ExecutionInterrupted("shutdown")


@shared_across_queries
@guarded_by("_lock", "_closed", "_inflight", "_running", "stats")
class QueryService:
    """Threaded, overload-protected front door for one database.

    Use as a context manager, or call :meth:`start` / :meth:`shutdown`
    explicitly.  Thread safety: the lifecycle flag, in-flight count,
    and stats are guarded by ``_lock`` (a :class:`threading.Condition`
    used by drain waits); the queue, tenants, and admission controller
    are internally locked.  No service lock is held across engine
    execution (RS013).
    """

    def __init__(
        self,
        db: Any,
        config: Optional[ServiceConfig] = None,
        tenants: Optional[TenantRegistry] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self._db = db
        self._clock = clock if clock is not None else MONOTONIC_CLOCK
        self._tenants = (
            tenants
            if tenants is not None
            else TenantRegistry(clock=clock)
        )
        self._queue = AgingPriorityQueue(
            capacity=self.config.queue_capacity,
            aging_interval_s=self.config.aging_interval_s,
            clock=self._clock,
            retry_after_hint_s=self.config.retry_after_hint_s,
        )
        max_concurrent = (
            self.config.max_concurrent
            if self.config.max_concurrent is not None
            else self.config.workers
        )
        self._admission = AdmissionController(
            max_concurrent=max_concurrent,
            max_queued=self.config.workers,
        )
        self.shutdown_control = ShutdownControl()
        self._lock = threading.Condition()
        self._closed = False
        self._inflight = 0
        self._running: List[PendingQuery] = []
        self.stats = ServiceStats()
        self._workers: List[threading.Thread] = []
        self._started = False
        # Engines are constructed lazily by the database and cached in
        # a plain dict; warm the cache up front so worker threads never
        # race the first construction.  Sharded databases expose an
        # explicit warm-up hook that covers every shard.
        warm = getattr(db, "warm_engines", None)
        if callable(warm):
            warm()
        elif getattr(db, "index", None) is not None:
            for method in ("seqscan", "hlmj", "hlmj-wg", "ru", "ru-cost"):
                db._engine(method, None)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "QueryService":
        """Spawn the worker pool (idempotent)."""
        if self._started:
            return self
        self._started = True
        for index in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
        return self

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    @property
    def tenants(self) -> TenantRegistry:
        return self._tenants

    @property
    def queue(self) -> AgingPriorityQueue:
        return self._queue

    @property
    def admission(self) -> AdmissionController:
        return self._admission

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def shutdown(
        self, drain: bool = True, timeout: Optional[float] = 30.0
    ) -> None:
        """Stop the service; idempotent.

        With ``drain`` (default) queued and running queries finish
        first (bounded by ``timeout``); without it, queued requests
        fail with ``ServiceOverloadedError("shutdown")`` and running
        queries are cancelled — they resolve as partial results with
        reason ``"cancelled"``.  Either way every outstanding future
        resolves: shutdown never strands a client.
        """
        with self._lock:
            already = self._closed
            self._closed = True
        if not already and drain:
            with self._lock:
                self._lock.wait_for(
                    lambda: self._inflight == 0 and self._queue.depth == 0,
                    timeout=timeout,
                )
        leftovers = self._queue.close()
        if not drain:
            self._cancel_inflight()
        self.shutdown_control.stop()
        for pending in leftovers:
            self._fail(pending, ServiceOverloadedError("shutdown"))
        for worker in self._workers:
            worker.join(timeout=5.0)
        # Late stragglers (e.g. a query finishing right at the drain
        # timeout) still resolve via the worker's normal completion
        # path; nothing is left permanently pending.

    def _cancel_inflight(self) -> None:
        for pending in self._inflight_pendings():
            pending.cancel()

    def _inflight_pendings(self) -> List["PendingQuery"]:
        with self._lock:
            return list(self._running)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, request: QueryRequest) -> PendingQuery:
        """Admit one request; returns its :class:`PendingQuery`.

        Raises :class:`~repro.exceptions.ServiceOverloadedError` when
        the request cannot even be queued (shutdown, rate limit, open
        tenant breaker, full queue with nothing worse to shed).
        """
        with self._lock:
            if self._closed:
                self.stats.rejected += 1
                raise ServiceOverloadedError("shutdown")
            self.stats.submitted += 1
        tenant = self._tenants.get_or_create(request.tenant)
        tenant.count("submitted")

        wait = tenant.bucket.try_acquire()
        if wait > 0.0:
            tenant.count("rejected_rate")
            self._count_rejected()
            raise ServiceOverloadedError(
                "tenant-rate-limit",
                retry_after_s=wait,
                message=(
                    f"tenant {tenant.name!r} exceeded "
                    f"{tenant.policy.rate:g} req/s"
                ),
            )
        if tenant.breaker.state == "open":
            tenant.count("rejected_breaker")
            self._count_rejected()
            raise ServiceOverloadedError(
                "tenant-circuit-open",
                retry_after_s=tenant.policy.breaker_reset_s,
                message=(
                    f"tenant {tenant.name!r} breaker is open after "
                    f"repeated query faults"
                ),
            )

        timeout_s = request.timeout_s
        if timeout_s is None:
            timeout_s = self.config.default_timeout_s
        deadline = (
            Deadline.after(timeout_s, clock=self._clock)
            if timeout_s is not None
            else None
        )
        pending = PendingQuery(
            request=request,
            tenant=tenant,
            qos=tenant.policy.qos,
            enqueue_time=self._clock.monotonic(),
            deadline=deadline,
            token=CancellationToken(),
        )
        try:
            shed = self._queue.put(pending, pending.qos)
        except ServiceOverloadedError:
            self._count_rejected()
            raise
        if shed is not None:
            shed.tenant.count("shed")
            with self._lock:
                self.stats.shed += 1
            self._fail(
                shed,
                ServiceOverloadedError(
                    "queue-shed",
                    retry_after_s=self.config.retry_after_hint_s
                    * max(1, self._queue.depth),
                    message="evicted from a full queue by higher-QoS work",
                ),
            )
        return pending

    def query(
        self,
        request: "QueryRequest | Dict[str, Any]",
        timeout: Optional[float] = None,
    ) -> ServiceResponse:
        """Synchronous convenience: submit and wait for the response."""
        from repro.serve.protocol import parse_request

        if isinstance(request, dict):
            request = parse_request(request)
        return self.submit(request).result(timeout=timeout)

    def _count_rejected(self) -> None:
        with self._lock:
            self.stats.rejected += 1

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            try:
                self.shutdown_control.checkpoint()
            except ExecutionInterrupted:
                break
            pending = self._queue.get(timeout=self.config.queue_poll_s)
            if pending is None:
                continue
            self._run_pending(pending)

    def _current_tier(self) -> int:
        watermark = (
            self.config.saturation_watermark * self.config.queue_capacity
        )
        return 1 if self._queue.depth >= watermark else 0

    def _effective_budget(
        self, request: QueryRequest, qos: QosClass, tier: int
    ) -> Optional[QueryBudget]:
        pages = request.max_pages
        if tier >= 1:
            cap = self.config.page_budgets().get(qos)
            if cap is not None:
                pages = cap if pages is None else min(pages, cap)
        if pages is None and request.max_candidates is None:
            return None
        return QueryBudget(
            max_page_accesses=pages,
            max_candidates=request.max_candidates,
        )

    def _run_pending(self, pending: PendingQuery) -> None:
        started = self._clock.monotonic()
        queue_wait = max(0.0, started - pending.enqueue_time)
        tier = self._current_tier()
        budget = self._effective_budget(pending.request, pending.qos, tier)
        self._note_start(pending)
        try:
            try:
                with self._admission.admit(priority=int(pending.qos)):
                    result = self._dispatch(pending, budget)
            except AdmissionRejectedError as error:
                self._fail(
                    pending,
                    ServiceOverloadedError(
                        "queue-full",
                        retry_after_s=self.config.retry_after_hint_s
                        * max(1, self._queue.depth),
                        message=f"admission rejected: {error}",
                    ),
                )
                return
            except (CircuitOpenError, StorageError) as error:
                pending.tenant.breaker.record_failure()
                pending.tenant.count("faults")
                self._fail(pending, error)
                return
            except ReproError as error:
                # Bad parameters that only the engine could detect
                # (query too short for omega, missing PSM index, ...).
                self._fail(pending, error)
                return
            except BaseException as error:  # never kill a worker
                self._fail(pending, error)
                return
            self._complete(pending, result, queue_wait, started, tier)
        finally:
            self._note_done(pending)

    def _dispatch(
        self, pending: PendingQuery, budget: Optional[QueryBudget]
    ) -> SearchResult:
        request = pending.request
        db = self._db
        common = dict(
            rho=request.rho,
            on_fault=request.on_fault,
            budget=budget,
            deadline=pending.deadline,
            token=pending.token,
        )
        if request.kind == "knn":
            return db.search(
                list(request.query),
                k=request.k,
                method=request.method,
                deferred=request.deferred,
                **common,
            )
        if request.kind == "range":
            return db.range_search(
                list(request.query), epsilon=request.epsilon, **common
            )
        if request.kind == "stream":
            return self._dispatch_stream(pending, budget)
        raise UsageError(f"unknown request kind {request.kind!r}")

    def _dispatch_stream(
        self, pending: PendingQuery, budget: Optional[QueryBudget]
    ) -> SearchResult:
        request = pending.request
        stream = self._db.iter_matches(
            list(request.query),
            k=request.k,
            rho=request.rho,
            on_fault=request.on_fault,
            budget=budget,
            deadline=pending.deadline,
            token=pending.token,
        )
        matches: List[Match] = []
        try:
            for match in stream:
                matches.append(match)
                if pending.on_match is not None:
                    pending.on_match(match)
        finally:
            stream.close()
        stats = stream.stats
        assert stats is not None  # set by close()/exhaustion
        if stream.interrupted:
            # The stream's own certificate bounds *unexamined*
            # candidates, but an interrupted stream may also hold
            # examined candidates whose ranks were never settled and
            # therefore never emitted.  Those sit at or above the last
            # emitted distance (ranked-union emission is nondecreasing),
            # so the sound bound for the emitted prefix is the minimum
            # of the two — and 0.0 when nothing was emitted at all (a
            # vacuous but honest certificate).
            if matches:
                certificate = min(
                    stream.certificate, matches[-1].distance
                )
            else:
                certificate = 0.0
            return PartialResult(
                matches=matches,
                stats=stats,
                degraded=stream.degraded,
                fault_report=stream.fault_report,
                profile=stream.profile,
                reason=stream.reason,
                certificate=certificate,
            )
        return SearchResult(
            matches=matches,
            stats=stats,
            degraded=stream.degraded,
            fault_report=stream.fault_report,
            profile=stream.profile,
        )

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def _complete(
        self,
        pending: PendingQuery,
        result: SearchResult,
        queue_wait: float,
        started: float,
        tier: int,
    ) -> None:
        if result.degraded:
            pending.tenant.breaker.record_failure()
            pending.tenant.count("faults")
        else:
            pending.tenant.breaker.record_success()
        partial = isinstance(result, PartialResult)
        pending.tenant.count("partial" if partial else "completed")
        with self._lock:
            self.stats.completed += 1
            if partial:
                self.stats.partial += 1
        response = ServiceResponse(
            request_id=pending.request.request_id,
            kind=pending.request.kind,
            tenant=pending.tenant.name,
            result=result,
            queue_wait_s=queue_wait,
            execution_s=max(0.0, self._clock.monotonic() - started),
            degradation_tier=tier,
            want_profile=pending.request.profile,
        )
        if not pending.future.set_running_or_notify_cancel():
            return
        pending.future.set_result(response)

    def _fail(self, pending: PendingQuery, error: BaseException) -> None:
        with self._lock:
            self.stats.errors += 1
        if not pending.future.set_running_or_notify_cancel():
            return
        pending.future.set_exception(error)

    def _note_start(self, pending: PendingQuery) -> None:
        with self._lock:
            self._inflight += 1
            self._running.append(pending)
            self.stats.peak_inflight = max(
                self.stats.peak_inflight, self._inflight
            )
            self._lock.notify_all()

    def _note_done(self, pending: PendingQuery) -> None:
        with self._lock:
            self._inflight -= 1
            if pending in self._running:
                self._running.remove(pending)
            self._lock.notify_all()
