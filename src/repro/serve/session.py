"""Localhost socket front end for the query service.

JSON-lines over TCP: each client connection writes one request object
per line and reads response lines back (stream requests interleave
match lines before the final summary).  The server is deliberately
boring — one daemon thread per connection, driven entirely by
:class:`~repro.serve.service.QueryService` — because all the policy
(queueing, QoS, degradation) lives in the service layer, where it is
testable in-process.

Robustness notes:

* Malformed lines produce a typed error *response* on the same
  connection; they never raise out of the handler.
* Sends carry a timeout: a slow client that stops reading is
  disconnected rather than allowed to wedge a handler thread
  mid-response.
* Accept and read loops are checkpointed against the service's
  :class:`~repro.serve.service.ShutdownControl` (lint rule RS013), so
  a shutdown is observed within one poll interval.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.concurrency import shared_across_queries
from repro.core.results import Match
from repro.exceptions import (
    ExecutionInterrupted,
    ProtocolError,
    UsageError,
)
from repro.serve import protocol
from repro.serve.service import PendingQuery, QueryService

_POLL_S = 0.1


@shared_across_queries
class SocketServer:
    """Threaded JSON-lines server wrapping one :class:`QueryService`.

    ``port=0`` (the default) binds an ephemeral port; read it back
    from :attr:`address` after :meth:`start`.  The server owns no
    query state — connections can be torn down at any time without
    affecting in-flight accounting in the service.
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        send_timeout_s: float = 5.0,
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._send_timeout_s = send_timeout_s
        self._sock: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """Bound ``(host, port)``; raises before :meth:`start`."""
        if self._sock is None:
            raise UsageError("server not started")
        return self._sock.getsockname()[:2]

    def start(self) -> "SocketServer":
        """Bind, listen, and spawn the accept loop (idempotent)."""
        if self._sock is not None:
            return self
        self._service.start()
        sock = socket.create_server((self._host, self._port))
        sock.settimeout(_POLL_S)
        self._sock = sock
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def __enter__(self) -> "SocketServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Stop accepting and release the listening socket.

        Does **not** shut down the wrapped service (the caller may be
        sharing it); established connections finish their in-flight
        request and then observe the closed socket.
        """
        sock = self._sock
        self._sock = None
        if sock is not None:
            sock.close()
        thread = self._accept_thread
        self._accept_thread = None
        if thread is not None:
            thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    # Server loops
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                self._service.shutdown_control.checkpoint()
            except ExecutionInterrupted:
                break
            sock = self._sock
            if sock is None:
                break
            try:
                conn, _ = sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            handler = threading.Thread(
                target=self._handle_connection,
                args=(conn,),
                name="repro-serve-conn",
                daemon=True,
            )
            handler.start()

    def _handle_connection(self, conn: socket.socket) -> None:
        conn.settimeout(self._send_timeout_s)
        try:
            reader = conn.makefile("rb")
            while True:
                try:
                    self._service.shutdown_control.checkpoint()
                except ExecutionInterrupted:
                    break
                try:
                    line = reader.readline()
                except (socket.timeout, OSError):
                    continue
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                if not self._serve_line(conn, text):
                    break
        finally:
            conn.close()

    def _serve_line(self, conn: socket.socket, text: str) -> bool:
        """Handle one request line; False = drop the connection."""
        request_id: Any = None
        try:
            try:
                obj = json.loads(text)
            except ValueError as error:
                raise ProtocolError(
                    f"request is not valid JSON: {error}"
                ) from None
            if isinstance(obj, dict):
                request_id = obj.get("id")
            request = protocol.parse_request(obj)
            pending = self._service.submit(request)
            if request.kind == "stream":
                self._attach_stream_writer(conn, pending)
            response = pending.result()
            return self._send(conn, protocol.encode_response(response))
        except BaseException as error:  # typed error line, never a crash
            return self._send(conn, protocol.encode_error(error, request_id))

    def _attach_stream_writer(
        self, conn: socket.socket, pending: PendingQuery
    ) -> None:
        request_id = pending.request.request_id

        def emit(match: Match) -> None:
            # A failed interleaved send (slow client) is swallowed;
            # the final response send will fail too and the connection
            # will be dropped there.
            self._send(conn, protocol.encode_match_line(request_id, match))

        pending.on_match = emit

    def _send(self, conn: socket.socket, payload: Dict[str, Any]) -> bool:
        data = (json.dumps(payload) + "\n").encode("utf-8")
        try:
            conn.sendall(data)
            return True
        except (socket.timeout, OSError):
            return False


class ServeClient:
    """Minimal blocking client for the JSON-lines protocol.

    For tests, the CLI self-test, and as executable protocol
    documentation.  Not thread-safe: use one client per thread.
    """

    def __init__(
        self, host: str, port: int, timeout_s: float = 30.0
    ) -> None:
        self._conn = socket.create_connection((host, port), timeout=timeout_s)
        self._reader = self._conn.makefile("rb")

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._conn.close()

    def _read_object(self) -> Dict[str, Any]:
        line = self._reader.readline()
        if not line:
            raise ProtocolError("server closed the connection")
        decoded = json.loads(line.decode("utf-8"))
        if not isinstance(decoded, dict):
            raise ProtocolError("response must be a JSON object")
        return decoded

    def request_raw(self, obj: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Send one request; return every response line (undecoded)."""
        self._conn.sendall((json.dumps(obj) + "\n").encode("utf-8"))
        lines: List[Dict[str, Any]] = []
        final = False
        while not final:
            response = self._read_object()
            lines.append(response)
            final = bool(response.get("final", True))
        return lines

    def request(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request; return the decoded final response.

        Raises the typed exception an error response encodes.  For
        stream requests the final summary is returned with the
        interleaved matches available under ``"streamed"``.
        """
        lines = self.request_raw(obj)
        final = protocol.decode_response(lines[-1])
        if len(lines) > 1:
            final = dict(final)
            final["streamed"] = [
                entry["match"] for entry in lines[:-1] if "match" in entry
            ]
        return final
