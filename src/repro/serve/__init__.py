"""Concurrent query service for the repro library (``repro serve``).

Turns the single-query library into a multi-tenant front door while
keeping the paper's exactness contract intact under load:

* :mod:`repro.serve.queue` — bounded admission queue with priority
  **aging** (no starvation) and shed-lowest-QoS-first overflow.
* :mod:`repro.serve.tenants` — QoS classes, per-tenant token buckets,
  and per-tenant circuit breakers.
* :mod:`repro.serve.protocol` — the JSON-lines wire protocol.
* :mod:`repro.serve.service` — :class:`QueryService`, the embeddable
  threaded executor mapping QoS onto ``QueryBudget`` / ``Deadline`` /
  ``CancellationToken``.
* :mod:`repro.serve.session` — the localhost socket server and a small
  line-protocol client.

The headline property is graceful degradation: overload produces typed
:class:`~repro.exceptions.ServiceOverloadedError` back-pressure with a
retry-after hint, timeouts produce
:class:`~repro.engines.base.PartialResult` responses with sound
exactness certificates, and faults trip per-tenant breakers — never a
crash, never a silent drop.  See ``docs/service.md``.
"""

from repro.serve.protocol import (
    QueryRequest,
    decode_response,
    encode_error,
    encode_response,
    parse_request,
)
from repro.serve.queue import AgingPriorityQueue, QueueStats
from repro.serve.service import (
    PendingQuery,
    QueryService,
    ServiceConfig,
    ServiceResponse,
    ServiceStats,
)
from repro.serve.session import ServeClient, SocketServer
from repro.serve.tenants import (
    QosClass,
    TenantPolicy,
    TenantRegistry,
    TenantState,
    TokenBucket,
)

__all__ = [
    "AgingPriorityQueue",
    "PendingQuery",
    "QosClass",
    "QueryRequest",
    "QueryService",
    "QueueStats",
    "ServeClient",
    "ServiceConfig",
    "ServiceResponse",
    "ServiceStats",
    "SocketServer",
    "TenantPolicy",
    "TenantRegistry",
    "TenantState",
    "TokenBucket",
    "decode_response",
    "encode_error",
    "encode_response",
    "parse_request",
]
