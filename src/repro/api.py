"""Public facade: :class:`SubsequenceDatabase`.

One object wires the whole stack together — paged storage, buffer pool,
DualMatch R*-tree index, and the five query engines — behind a small
API::

    from repro import SubsequenceDatabase

    db = SubsequenceDatabase(omega=64, features=4)
    db.insert(0, values)
    db.build()
    result = db.search(query, k=25, method="ru-cost", deferred=True)
    for match in result.matches:
        print(match.sid, match.start, match.distance)
    print(result.stats.candidates, result.stats.page_accesses)

Methods
-------
``method`` names accepted by :meth:`SubsequenceDatabase.search`:

========== ===========================================================
name       engine
========== ===========================================================
seqscan    LB_Keogh-filtered sequential scan
hlmj       global priority queue + MDMWP pruning (Han et al. [12])
hlmj-wg    hlmj + the window-group distance of [12] (tighter prune)
psm        progressive index merge + bloom signatures (Xin et al. [22])
ru         ranked union, default max-delta scheduling (this paper)
ru-cost    ranked union, cost-aware density scheduling (this paper)
========== ===========================================================

``psm`` requires ``build(psm=True)``, which additionally builds the
FRM-style sliding-window index PSM joins over.
"""

from __future__ import annotations

import math
import pathlib
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Union,
)

from repro.control import (
    AdmissionController,
    CancellationToken,
    Deadline,
    ExecutionControl,
    QueryBudget,
    certificate_from_pow,
)
from repro.core.clock import Clock
from repro.core.metrics import QueryStats
from repro.core.results import Match
from repro.engines.base import (
    Engine,
    EngineConfig,
    FaultReport,
    SearchResult,
)
from repro.engines.cost_density import CostDensityConfig
from repro.engines.hlmj import HlmjEngine
from repro.engines.psm import PsmEngine, build_sliding_index
from repro.engines.ranked_union import RankedUnionEngine
from repro.engines.seqscan import SeqScanEngine
from repro.exceptions import (
    ConfigurationError,
    ExecutionInterrupted,
    IndexNotBuiltError,
)
from repro.index.builder import DualMatchIndex, build_index
from repro.obs import QueryProfile
from repro.obs.tracer import NULL_TRACER, Span, Tracer
from repro.storage.backends import StorageBackend, resolve_backend
from repro.storage.buffer import BufferPool, RetryPolicy
from repro.storage.circuit import CircuitBreaker
from repro.storage.faults import FaultInjector
from repro.storage.page import PAGE_SIZE_DEFAULT, PageKind
from repro.storage.pager import Pager
from repro.storage.sequences import SequenceStore

if TYPE_CHECKING:
    from repro.storage.persistence import PathLike

_METHODS = ("seqscan", "hlmj", "hlmj-wg", "psm", "ru", "ru-cost")


class SubsequenceDatabase:
    """A ranked subsequence matching database.

    Parameters
    ----------
    omega:
        Disjoint/sliding window size (paper default 64).
    features:
        PAA dimensionality ``f`` (must divide ``omega``).
    page_size:
        Simulated disk page size in bytes (paper: 4096).
    buffer_fraction:
        LRU buffer capacity as a fraction of the database's pages,
        applied when :meth:`build` runs (paper default 5 %).
    p:
        Norm order for all distances.
    data_stride:
        GeneralMatch data-window stride ``J`` (must divide ``omega``).
        Defaults to ``omega`` — the paper's DualMatch configuration.
        Smaller strides index more (overlapping) data windows in
        exchange for tighter per-class bounds; ``J = 1`` is the FRM
        end of the spectrum.
    fault_injector:
        Optional :class:`~repro.storage.faults.FaultInjector`; when
        given, the database runs on a
        :class:`~repro.storage.faults.FaultyPager` that injects the
        configured faults.  With no injector (or an empty one) results
        and I/O counts are identical to a plain pager.
    retry_policy:
        Optional :class:`~repro.storage.buffer.RetryPolicy` bounding
        how transient read failures are retried by the buffer pool.
    clock:
        Injectable :class:`~repro.core.clock.Clock` shared by retry
        backoff, circuit-breaker timers, and injected latency faults.
        Defaults to the real monotonic clock; tests and the chaos
        harness inject a :class:`~repro.core.clock.FakeClock`.
    circuit_breaker:
        Optional :class:`~repro.storage.circuit.CircuitBreaker` gating
        physical page reads: when the recent transient-failure rate
        crosses its threshold, fetches fail fast with
        :class:`~repro.exceptions.CircuitOpenError` until the device
        proves healthy again.
    admission:
        Optional :class:`~repro.control.AdmissionController` limiting
        concurrent (and queued) :meth:`search` calls; excess queries are
        rejected with
        :class:`~repro.exceptions.AdmissionRejectedError`.
    tracer:
        Optional :class:`~repro.obs.Tracer`.  When given (and enabled)
        every query records a structured span tree and metrics into it,
        and results carry a :class:`~repro.obs.QueryProfile`.  Defaults
        to the disabled null tracer — the untraced fast path is
        byte-identical to a database built without one.  Can be swapped
        later with :meth:`set_tracer`.
    backend:
        Storage backend spec: ``None``/``"file"`` (reference, heap
        payloads), ``"mmap"`` (zero-copy data pages over a read-only
        memory map), or a :class:`~repro.storage.backends.StorageBackend`
        instance.  Backends are a runtime cache policy — results, page
        access counts, and the on-disk persistence format are identical
        across them.  See :mod:`repro.storage.backends`.
    """

    def __init__(
        self,
        omega: int = 64,
        features: int = 4,
        page_size: int = PAGE_SIZE_DEFAULT,
        buffer_fraction: float = 0.05,
        p: float = 2.0,
        data_stride: Optional[int] = None,
        fault_injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
        clock: Optional[Clock] = None,
        circuit_breaker: Optional[CircuitBreaker] = None,
        admission: Optional[AdmissionController] = None,
        tracer: Optional[Tracer] = None,
        backend: Union[None, str, StorageBackend] = None,
    ) -> None:
        if not 0 < buffer_fraction <= 1:
            raise ConfigurationError(
                f"buffer_fraction must be in (0, 1], got {buffer_fraction}"
            )
        self.omega = omega
        self.features = features
        self.data_stride = omega if data_stride is None else data_stride
        self.p = p
        self.buffer_fraction = buffer_fraction
        self.clock = clock
        self._backend = resolve_backend(backend)
        self.pager: Pager = self._backend.open_pager(
            page_size=page_size, fault_injector=fault_injector, clock=clock
        )
        self.buffer = BufferPool(
            self.pager,
            capacity_pages=1,
            retry_policy=retry_policy,
            clock=clock,
            circuit_breaker=circuit_breaker,
        )
        self.admission = admission
        self.store = SequenceStore(self.pager, self.buffer)
        self.index: Optional[DualMatchIndex] = None
        self._engines: Dict[str, Engine] = {}
        self._sliding_index = None
        self._wal = None
        self._durable_root = None
        self._last_applied_lsn = 0
        self._tracer = NULL_TRACER
        self.set_tracer(tracer if tracer is not None else NULL_TRACER)

    @property
    def tracer(self) -> Tracer:
        """The tracer observing this database's queries."""
        return self._tracer

    def set_tracer(self, tracer: Tracer) -> None:
        """Attach (or swap) the tracer across the whole storage stack.

        Propagates to the pager, the buffer pool, and — via the shared
        buffer — the R*-tree and every engine constructed afterwards,
        so one call flips the entire plane on or off.
        """
        self._tracer = tracer
        self.pager.tracer = tracer
        self.buffer.tracer = tracer
        if self._wal is not None:
            self._wal.tracer = tracer

    @property
    def backend(self) -> StorageBackend:
        """The storage backend serving this database's pages."""
        return self._backend

    def close(self) -> None:
        """Release backend resources (maps, scratch files).  Idempotent.

        The database stays usable afterwards — a zero-copy backend
        migrates still-live views back to heap arrays before unmapping —
        but new queries run on heap pages.  Also usable as a context
        manager::

            with SubsequenceDatabase(backend="mmap") as db:
                ...
        """
        self._backend.close()

    def __enter__(self) -> "SubsequenceDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def circuit_breaker(self) -> Optional[CircuitBreaker]:
        """The breaker guarding physical reads, if one is attached."""
        return self.buffer.circuit_breaker

    @property
    def fault_injector(self) -> Optional[FaultInjector]:
        """The active fault injector, if the pager is a faulty one."""
        return getattr(self.pager, "injector", None)

    # ------------------------------------------------------------------
    # Loading and building
    # ------------------------------------------------------------------

    def insert(self, sid: int, values: Sequence[float]) -> None:
        """Add one data sequence.  Must precede :meth:`build`."""
        if self.index is not None:
            raise ConfigurationError(
                "insert() after build() is not supported; create a new "
                "database and rebuild"
            )
        self.store.add_sequence(sid, values)

    def build(self, psm: bool = False) -> None:
        """Build the DualMatch index (and optionally PSM's sliding index).

        Also sizes the LRU buffer to ``buffer_fraction`` of the final
        page count and clears it, so searches start from a cold cache.
        """
        if self.store.num_sequences == 0:
            raise ConfigurationError("no sequences inserted before build()")
        self.index = build_index(
            self.store,
            omega=self.omega,
            features=self.features,
            p=self.p,
            data_stride=self.data_stride,
        )
        if psm:
            self._sliding_index = build_sliding_index(
                self.store, omega=self.omega, features=self.features, p=self.p
            )
        # Let the backend install its query-serving representation
        # (e.g. zero-copy mmap views) before checksums snapshot it.
        self._backend.attach(self)
        # The page file is now in its query-serving state: snapshot
        # per-page checksums so every later fetch is verified.
        self.pager.seal()
        self.resize_buffer(self.buffer_fraction)
        self.reset_cache()

    def resize_buffer(self, fraction: float) -> None:
        """Re-size the buffer pool to a fraction of all allocated pages."""
        if not 0 < fraction <= 1:
            raise ConfigurationError(
                f"fraction must be in (0, 1], got {fraction}"
            )
        self.buffer_fraction = fraction
        capacity = max(1, int(self.pager.num_pages * fraction))
        self.buffer.resize(capacity)

    def reset_cache(self) -> None:
        """Empty the buffer pool and zero the I/O counters (cold start)."""
        self.buffer.clear()
        self.buffer.stats.reset()
        self.pager.stats.reset()

    # ------------------------------------------------------------------
    # Searching
    # ------------------------------------------------------------------

    def _engine(
        self, method: str, cost_config: Optional[CostDensityConfig]
    ) -> Engine:
        if self.index is None:
            raise IndexNotBuiltError("call build() before search()")
        if method not in _METHODS:
            raise ConfigurationError(
                f"unknown method {method!r}; expected one of {_METHODS}"
            )
        if method == "psm":
            if self._sliding_index is None:
                raise IndexNotBuiltError(
                    "psm requires build(psm=True) for the sliding index"
                )
            return PsmEngine(self._sliding_index)
        if method == "ru-cost" and cost_config is not None:
            return RankedUnionEngine(
                self.index, scheduling="cost-aware", cost_config=cost_config
            )
        cached = self._engines.get(method)
        if cached is None:
            if method == "seqscan":
                cached = SeqScanEngine(self.index)
            elif method == "hlmj":
                cached = HlmjEngine(self.index)
            elif method == "hlmj-wg":
                cached = HlmjEngine(self.index, use_window_group=True)
            elif method == "ru":
                cached = RankedUnionEngine(self.index, scheduling="max-delta")
            else:
                cached = RankedUnionEngine(
                    self.index, scheduling="cost-aware"
                )
            self._engines[method] = cached
        return cached

    def search(
        self,
        query: Sequence[float],
        k: int = 10,
        rho: Optional[int] = None,
        method: str = "ru-cost",
        deferred: bool = False,
        cost_config: Optional[CostDensityConfig] = None,
        on_fault: str = "raise",
        budget: Optional[QueryBudget] = None,
        deadline: Optional[Deadline] = None,
        token: Optional[CancellationToken] = None,
        normalize: bool = False,
    ) -> SearchResult:
        """Find the ``k`` subsequences nearest to ``query`` under DTW.

        Parameters
        ----------
        query:
            Query sequence; must satisfy ``len >= 2 * omega - 1``.
        k:
            Number of results.
        rho:
            Warping width; defaults to 5 % of the query length (the
            paper's setting).
        method:
            Engine name (see module docstring).
        deferred:
            Use the deferred retrieval mechanism (the "(D)" variants).
        cost_config:
            RU-COST tuning overrides (``method="ru-cost"`` only).
        on_fault:
            ``"raise"`` (default) propagates storage faults that survive
            buffer-pool retries; ``"degrade"`` skips unreadable pages,
            returns a well-formed top-k over what is readable, and flags
            the result ``degraded=True`` with a ``fault_report``.
        budget:
            Optional :class:`~repro.control.QueryBudget` capping page
            accesses and candidate evaluations for this query.
        deadline:
            Optional :class:`~repro.control.Deadline` bounding wall
            clock.
        token:
            Optional :class:`~repro.control.CancellationToken` the
            caller can cancel from outside.
        normalize:
            Match under z-normalized DTW: the query and every candidate
            are z-normalized (each by its own mean and standard
            deviation) before distances are computed.  Exact — the
            normalized lower bounds of :mod:`repro.core.normalize` keep
            the same sandwich guarantees as the raw ones — and the
            default raw path is byte-identical to before the flag
            existed.

        When any limit trips mid-query, the return value is a
        :class:`~repro.engines.base.PartialResult`: the best-k-so-far
        plus an exactness certificate bounding what was left unexamined.
        With no limits, behaviour (results and I/O counts) is identical
        to the pre-control-plane library.
        """
        if rho is None:
            rho = max(1, int(0.05 * len(query)))
        engine = self._engine(method, cost_config)
        config = EngineConfig(
            k=k,
            rho=rho,
            deferred=deferred,
            p=self.p,
            on_fault=on_fault,
            normalize=normalize,
        )
        control = ExecutionControl(
            budget=budget, deadline=deadline, token=token,
            tracer=self._tracer,
        )
        if self.admission is None:
            return engine.search(query, config, control=control)
        with self.admission.admit():
            return engine.search(query, config, control=control)

    def search_scaled(
        self,
        query: Sequence[float],
        k: int = 10,
        scales: Sequence[float] = (0.5, 1.0, 2.0),
        rho_fraction: float = 0.05,
        method: str = "ru-cost",
        deferred: bool = False,
    ) -> SearchResult:
        """Top-k across several query scales (variable-length matching).

        The paper's remedy for matching subsequences of length
        ``l != Len(Q)``: the query is resampled to each scaled length,
        one ranked search runs per scale, and results merge under the
        length-normalised distance of :mod:`repro.core.scaling` (raw
        DTW grows with length, so unnormalised merging would always
        favour the shortest scale).  Matches keep their per-scale
        ``length``; ``Match.distance`` is the *normalised* value.

        Scales whose rounded length violates ``len >= 2*omega - 1`` are
        skipped; stats are summed over the scales actually run.
        """
        from repro.core.scaling import (
            normalized_distance,
            resample,
            scale_lengths,
        )

        lengths = scale_lengths(len(query), scales, self.omega)
        merged: List[Match] = []
        totals = QueryStats()
        for length in lengths:
            scaled_query = resample(query, length)
            rho = max(1, int(rho_fraction * length))
            result = self.search(
                scaled_query,
                k=k,
                rho=rho,
                method=method,
                deferred=deferred,
            )
            totals.merge(result.stats)
            for match in result.matches:
                merged.append(
                    Match(
                        distance=normalized_distance(
                            match.distance, length, self.p
                        ),
                        sid=match.sid,
                        start=match.start,
                        length=match.length,
                    )
                )
        merged.sort()
        return SearchResult(matches=merged[:k], stats=totals)

    def range_search(
        self,
        query: Sequence[float],
        epsilon: float,
        rho: Optional[int] = None,
        on_fault: str = "raise",
        budget: Optional[QueryBudget] = None,
        deadline: Optional[Deadline] = None,
        token: Optional[CancellationToken] = None,
        normalize: bool = False,
    ) -> SearchResult:
        """All subsequences within DTW distance ``epsilon`` of ``query``.

        The classical range subsequence matching query of the FRM /
        DualMatch lineage the paper builds on; exact under the banded
        DTW model.  Results are sorted best-first, with the same
        ``on_fault`` policy, fault reporting, budget / deadline /
        cancellation surface, and ``normalize`` semantics as
        :meth:`search`.
        """
        from repro.engines.range_search import RangeSearchEngine

        if self.index is None:
            raise IndexNotBuiltError("call build() before range_search()")
        if rho is None:
            rho = max(1, int(0.05 * len(query)))
        engine = RangeSearchEngine(self.index)
        control = ExecutionControl(
            budget=budget, deadline=deadline, token=token,
            tracer=self._tracer,
        )
        return engine.search(
            query,
            epsilon=epsilon,
            rho=rho,
            p=self.p,
            on_fault=on_fault,
            control=control,
            normalize=normalize,
        )

    def iter_matches(
        self,
        query: Sequence[float],
        k: int = 10,
        rho: Optional[int] = None,
        scheduling: str = "max-delta",
        on_fault: str = "raise",
        budget: Optional[QueryBudget] = None,
        deadline: Optional[Deadline] = None,
        token: Optional[CancellationToken] = None,
        normalize: bool = False,
    ) -> "MatchStream":
        """Stream up to ``k`` matches lazily, best first.

        Exposes the extended iterator model (Definition 5) directly:
        the ranked-union operator tree is pulled one ``GetNext()`` at a
        time, and each confirmed result is yielded as soon as its rank
        is settled — the first match typically arrives long before the
        k-th is resolved.  Consumers may stop early; no further index
        work happens after the stream is abandoned or closed.

        Returns a :class:`MatchStream` — an iterator that, once
        exhausted or closed, also surfaces the per-query
        :class:`~repro.core.metrics.QueryStats` and (under
        ``on_fault="degrade"``) the
        :class:`~repro.engines.base.FaultReport`, exactly like
        :meth:`search` does.  A budget, deadline, or cancellation
        ends the stream early, leaving :attr:`MatchStream.interrupted`
        set with the reason and exactness certificate.

        Non-deferred only (deferral batches retrievals, which is
        incompatible with incremental emission).
        """
        if self.index is None:
            raise IndexNotBuiltError("call build() before iter_matches()")
        if rho is None:
            rho = max(1, int(0.05 * len(query)))
        config = EngineConfig(
            k=k, rho=rho, p=self.p, on_fault=on_fault, normalize=normalize
        )
        control = ExecutionControl(
            budget=budget, deadline=deadline, token=token,
            tracer=self._tracer,
        )
        return MatchStream(
            db=self,
            query=query,
            config=config,
            scheduling=scheduling,
            control=control,
        )

    # ------------------------------------------------------------------
    # Online ingest (WAL-backed; see :mod:`repro.ingest`)
    # ------------------------------------------------------------------

    @property
    def wal(self):
        """The attached write-ahead log, if this database is durable."""
        return self._wal

    @property
    def durable_root(self):
        """Durable root directory (checkpoint + WAL), if attached."""
        return self._durable_root

    def attach_wal(self, wal, root=None) -> None:
        """Attach a :class:`~repro.storage.wal.WriteAheadLog`.

        Usually called by :func:`repro.ingest.create_durable` /
        :func:`repro.ingest.recover_database` rather than directly.
        The log inherits this database's tracer.
        """
        self._wal = wal
        self._durable_root = None if root is None else pathlib.Path(root)
        wal.tracer = self._tracer

    def ingest(self):
        """Open a WAL-logged mutation session against the built database.

        Use as a context manager; mutations group-commit (one fsync) on
        clean exit.  Without an attached WAL the session applies
        in-memory only (no durability).
        """
        from repro.ingest import IngestSession

        return IngestSession(self, self._wal)

    def append_sequence(self, sid: int, values: Sequence[float]):
        """Add one new sequence online, as a single committed session."""
        with self.ingest() as session:
            session.append(sid, values)
        return session.commit_lsn

    def extend_sequence(self, sid: int, values: Sequence[float]):
        """Append values to a stored sequence, as one committed session."""
        with self.ingest() as session:
            session.extend(sid, values)
        return session.commit_lsn

    def delete_sequence(self, sid: int):
        """Delete a stored sequence, as a single committed session."""
        with self.ingest() as session:
            session.delete(sid)
        return session.commit_lsn

    def checkpoint(self) -> int:
        """Checkpoint the durable root and truncate the WAL."""
        from repro.ingest import checkpoint_database

        return checkpoint_database(self)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, directory: "PathLike") -> None:
        """Persist the built database to a directory.

        See :mod:`repro.storage.persistence` for the format; a reloaded
        database reproduces identical results *and* identical page
        access counts.
        """
        from repro.storage.persistence import save_database

        save_database(self, directory)

    @classmethod
    def load(
        cls,
        directory: "PathLike",
        psm: bool = False,
        backend: Union[None, str, StorageBackend] = None,
    ) -> "SubsequenceDatabase":
        """Reconstruct a database saved with :meth:`save`.

        ``backend`` selects the storage backend the reloaded database
        runs on (the persisted format is backend-independent, so any
        save loads under any backend).
        """
        from repro.storage.persistence import load_database

        return load_database(directory, psm=psm, backend=backend)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def describe(self) -> Dict[str, float]:
        """Shape of the stored data and index (Table 2-style summary)."""
        if self.index is None:
            raise IndexNotBuiltError("call build() before describe()")
        summary = self.index.describe()
        summary["buffer_pages"] = self.buffer.capacity
        summary["total_pages"] = self.pager.num_pages
        return summary

    def verify_integrity(self) -> Dict[str, object]:
        """Scrub the built database: checksums plus counter invariants.

        Walks every page verifying its CRC32, validates the R*-tree
        structure, and cross-checks the storage counters (sequence
        placement versus allocated data pages, tree size versus leaf
        records).  Returns a report dict whose ``"ok"`` key is ``True``
        only when everything holds; the ``scrub`` CLI prints it.
        """
        if self.index is None:
            raise IndexNotBuiltError("call build() before verify_integrity()")
        report: Dict[str, object] = {
            "pages": self.pager.num_pages,
            "sealed": self.pager.sealed,
            "corrupt_pages": self.pager.verify_all(),
            "tree_errors": [],
            "counter_errors": [],
        }
        try:
            self.index.tree.check_invariants()
        except Exception as error:  # noqa: BLE001 — scrub reports, not raises
            report["tree_errors"] = [f"{type(error).__name__}: {error}"]

        counter_errors: List[str] = []
        histogram = self.pager.kind_histogram()
        data_pages = histogram.get(PageKind.DATA, 0)
        if data_pages != self.store.total_data_pages:
            counter_errors.append(
                f"data pages allocated ({data_pages}) != sequence "
                f"placement total ({self.store.total_data_pages})"
            )
        for sid in self.store.sequence_ids():
            meta = self.store.meta(sid)
            expected = -(-meta.length // self.store.values_per_page)
            if meta.num_pages != expected:
                counter_errors.append(
                    f"sequence {sid}: {meta.num_pages} pages recorded, "
                    f"{expected} required for {meta.length} values"
                )
            for page_id in meta.pages:
                if self.pager.kind_of(page_id) != PageKind.DATA:
                    counter_errors.append(
                        f"sequence {sid}: page {page_id} is "
                        f"{self.pager.kind_of(page_id).value}, expected data"
                    )
                    break
        leaf_records = sum(
            len(self.pager.peek(page_id).entries)
            for page_id in range(self.pager.num_pages)
            if self.pager.kind_of(page_id) == PageKind.INDEX_LEAF
        )
        if leaf_records < len(self.index.tree):
            counter_errors.append(
                f"leaf records ({leaf_records}) < tree size "
                f"({len(self.index.tree)})"
            )
        report["counter_errors"] = counter_errors
        report["ok"] = (
            not report["corrupt_pages"]
            and not report["tree_errors"]
            and not counter_errors
        )
        return report


class MatchStream(Iterator[Match]):
    """Lazy best-first match iterator with post-hoc query diagnostics.

    Produced by :meth:`SubsequenceDatabase.iter_matches`.  Iterate it
    like any generator; when iteration ends — naturally, via
    :meth:`close`, or through a budget/deadline/cancellation interrupt —
    the stream's :attr:`stats`, :attr:`degraded`, and
    :attr:`fault_report` attributes carry the same per-query accounting
    :meth:`SubsequenceDatabase.search` returns, and on an interrupt
    :attr:`interrupted`, :attr:`reason`, and :attr:`certificate`
    describe the early exit (certificate semantics as in
    :class:`~repro.engines.base.PartialResult`).
    """

    def __init__(
        self,
        db: SubsequenceDatabase,
        query: Sequence[float],
        config: EngineConfig,
        scheduling: str,
        control: ExecutionControl,
    ) -> None:
        from repro.core.metrics import StatsRecorder
        from repro.core.normalize import NormalizationContext
        from repro.core.windows import QueryWindowSet
        from repro.engines.base import CandidateEvaluator
        from repro.engines.ranked_union import PhiOperator, UnionOperator

        assert db.index is not None  # checked by iter_matches
        self._config = config
        self._p = config.p
        self._window_set = QueryWindowSet.from_query(
            query,
            omega=db.omega,
            features=db.features,
            rho=config.rho,
            p=config.p,
            data_stride=db.index.data_stride,
            normalize=config.normalize,
        )
        # Candidate-side normalization stats come from in-memory
        # metadata (no page I/O), so build them before the recorder
        # starts counting.
        norm: Optional[NormalizationContext] = None
        if config.normalize:
            norm = NormalizationContext(
                db.index.store, self._window_set.length
            )
        self._recorder = StatsRecorder(db.pager, db.buffer).start()
        pager_stats = db.pager.stats
        reads_at_start = pager_stats.physical_reads
        self._control = control
        control.bind(
            self._recorder.stats,
            lambda: pager_stats.physical_reads - reads_at_start,
        )
        tracer = control.tracer
        self._tracer = tracer
        self._metrics_before = (
            tracer.metrics.snapshot() if tracer.enabled else None
        )
        # The root span must stay open across ``__next__`` calls, so it
        # cannot be a ``with`` block; :meth:`_finalize` closes it
        # exactly once when the stream ends.
        self._root_span = (
            tracer.start_span(  # repro: ignore[RS008]
                "engine.search",
                engine="RU-STREAM",
                k=config.k,
                rho=config.rho,
            )
            if tracer.enabled
            else None
        )
        self._evaluator = CandidateEvaluator(
            index=db.index,
            envelope=self._window_set.envelope,
            query=self._window_set.query,
            config=config,
            stats=self._recorder.stats,
            control=control,
            norm=norm,
        )
        children = [
            PhiOperator(
                class_index=class_index,
                window_set=self._window_set,
                index=db.index,
                evaluator=self._evaluator,
                config=config,
                scheduling=scheduling,
            )
            for class_index in range(self._window_set.num_classes)
            if self._window_set.classes[class_index]
        ]
        self._union = UnionOperator(children, self._evaluator)
        self._emitted = 0
        self._finished = False
        #: Final per-query counters; ``None`` until the stream ends.
        self.stats: Optional[QueryStats] = None
        #: Audit of tolerated faults (``None`` until the stream ends,
        #: or when the run was healthy).
        self.fault_report: Optional[FaultReport] = None
        self.degraded = False
        #: True when a budget, deadline, or cancellation cut the stream
        #: short before its natural end.
        self.interrupted = False
        #: Interrupt reason (see :class:`~repro.engines.base.PartialResult`).
        self.reason = ""
        #: Exactness certificate at the early exit (``inf`` for a
        #: stream that ended naturally: emitted ranks are exact).
        self.certificate = math.inf
        #: Per-query profile (``None`` until the stream ends, and
        #: always ``None`` when tracing is disabled).
        self.profile: Optional[QueryProfile] = None

    def __iter__(self) -> "MatchStream":
        return self

    def __next__(self) -> Match:
        from repro.engines.operators import Status

        if self._finished:
            raise StopIteration
        try:
            while self._emitted < self._config.k:
                status, payload = self._union.get_next()
                if status == Status.EOR:
                    break
                if status == Status.TUPLE:
                    self._emitted += 1
                    return Match(
                        distance=payload.distance_pow ** (1.0 / self._p),
                        sid=payload.sid,
                        start=payload.start,
                        length=self._window_set.length,
                    )
        except ExecutionInterrupted as signal:
            self._finalize(signal)
            raise StopIteration from None
        self._finalize(None)
        raise StopIteration

    def close(self) -> None:
        """Stop the stream early; diagnostics become available."""
        if not self._finished:
            self._finalize(None)

    def _finalize(self, signal: Optional[ExecutionInterrupted]) -> None:
        self._finished = True
        stats = self._recorder.finish()
        stats.checkpoints = self._control.checkpoints
        report = self._evaluator.fault_report
        self.degraded = bool(report)
        self.fault_report = report if report else None
        if signal is not None:
            stats.interrupted = 1
            self.interrupted = True
            self.reason = signal.reason
            certificate_pow = min(
                self._control.frontier_pow,
                self._evaluator.pending_lower_bound_pow(),
            )
            self.certificate = certificate_from_pow(certificate_pow, self._p)
        self.stats = stats
        root = self._root_span
        if isinstance(root, Span) and self._metrics_before is not None:
            root.close()
            self.profile = QueryProfile(
                span=root,
                metrics=self._tracer.metrics.snapshot().delta(
                    self._metrics_before
                ),
                stats=stats,
                fault_report=self.fault_report,
            )
