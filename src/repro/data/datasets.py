"""Dataset registry mirroring Table 2 of the paper.

``load_dataset`` produces a named :class:`Dataset` at a requested size.
Paper sizes (in thousands of points): UCR 1,056 / PIPE 24,307 /
WALK 1,000 / STOCK 328 / MUSIC 2,373.  The default ``scale`` of 1/64
keeps the *relative* sizes of the paper while making pure-Python sweeps
tractable; benches pass explicit sizes where they need to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.data import generators
from repro.exceptions import ConfigurationError

#: Paper sizes in data points (Table 2, "Size (x1,000)").
PAPER_SIZES: Dict[str, int] = {
    "UCR": 1_056_000,
    "PIPE": 24_307_000,
    "WALK": 1_000_000,
    "STOCK": 328_000,
    "MUSIC": 2_373_000,
}

DATASET_NAMES = tuple(PAPER_SIZES)

DEFAULT_SCALE = 1.0 / 64.0

#: Floor so even STOCK at small scales stays index-worthy.
_MIN_SIZE = 8_192


@dataclass
class Dataset:
    """One loaded dataset: the sequence plus provenance metadata."""

    name: str
    values: np.ndarray
    seed: int
    #: Injected-pattern offsets (PIPE only; empty otherwise).
    markers: Dict[str, List[int]] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return int(self.values.size)

    def describe(self) -> Dict[str, object]:
        """Row for the Table 2 reproduction."""
        return {
            "name": self.name,
            "size": self.size,
            "paper_size": PAPER_SIZES[self.name],
            "scale": self.size / PAPER_SIZES[self.name],
            "markers": {k: len(v) for k, v in self.markers.items()},
        }


def scaled_size(name: str, scale: float = DEFAULT_SCALE) -> int:
    """Paper size scaled down, floored at a usable minimum."""
    if name not in PAPER_SIZES:
        raise ConfigurationError(
            f"unknown dataset {name!r}; expected one of {DATASET_NAMES}"
        )
    return max(_MIN_SIZE, int(PAPER_SIZES[name] * scale))


def load_dataset(
    name: str,
    size: Optional[int] = None,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
) -> Dataset:
    """Generate a dataset by name at ``size`` points (or scaled default).

    >>> ds = load_dataset("WALK", size=10_000)
    >>> ds.size
    10000
    """
    if name not in PAPER_SIZES:
        raise ConfigurationError(
            f"unknown dataset {name!r}; expected one of {DATASET_NAMES}"
        )
    if size is None:
        size = scaled_size(name, scale)
    markers: Dict[str, List[int]] = {}
    if name == "UCR":
        values = generators.ucr_like(size, seed)
    elif name == "PIPE":
        values, markers = generators.pipe_like(size, seed)
    elif name == "WALK":
        values = generators.walk_like(size, seed)
    elif name == "STOCK":
        values = generators.stock_like(size, seed)
    else:
        values = generators.music_like(size, seed)
    return Dataset(name=name, values=values, seed=seed, markers=markers)
