"""Query workload generators (Experiments 1, 2, and the PIPE queries).

* :func:`regular_queries` — the paper's standard workload: subsequences
  of length ``Len(Q)`` extracted at random offsets [7, 12, 16].
* :func:`dense_queries` — the UCR-DENSE workload of Experiment 2: each
  query is stitched from a subsequence whose windows map into a *dense*
  region of PAA space and one whose windows map into a *sparse* region,
  manufacturing the MDMWP-scheduling pathology of Figure 2.
* :func:`pattern_queries` — the PIPE-BEND/VALVE/TEE workloads: queries
  cut around injected pattern instances, so their windows mix the dense
  periodic carrier with the sparse irregular pattern.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.paa import paa
from repro.data.datasets import Dataset
from repro.exceptions import ConfigurationError


def _check(values: np.ndarray, length: int, count: int) -> None:
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    if length < 2 or length > values.size:
        raise ConfigurationError(
            f"query length {length} invalid for data of size {values.size}"
        )


def regular_queries(
    values: np.ndarray,
    length: int,
    count: int,
    seed: int = 0,
    omega: int = 0,
    features: int = 4,
    max_density_quantile: float = 0.25,
) -> List[np.ndarray]:
    """``count`` random extracted subsequences of ``length``.

    When ``omega`` is given, offsets whose covered windows exceed the
    ``max_density_quantile`` of the window-density distribution are
    rejected; this reproduces the paper's characterisation of
    UCR-REGULAR as a query set "having no very dense windows"
    (Section 6.2).  With ``omega=0`` sampling is fully uniform.
    """
    _check(values, length, count)
    rng = np.random.default_rng(seed)
    if omega <= 0:
        starts = rng.integers(0, values.size - length + 1, size=count)
        return [values[start : start + length].copy() for start in starts]
    densities = window_densities(values, omega, features)
    cutoff = float(np.quantile(densities, max_density_quantile))
    queries: List[np.ndarray] = []
    attempts = 0
    while len(queries) < count:
        start = int(rng.integers(0, values.size - length + 1))
        attempts += 1
        first = start // omega
        last = min(densities.size - 1, (start + length - 1) // omega)
        if (
            attempts < 200 * count
            and densities[first : last + 1].max() > cutoff
        ):
            continue
        queries.append(values[start : start + length].copy())
    return queries


def window_densities(
    values: np.ndarray, omega: int, features: int
) -> np.ndarray:
    """Per-disjoint-window density of the PAA point cloud.

    Each window's PAA point is hashed to a grid cell (cell size = half a
    per-dimension standard deviation); a window's density is its cell's
    population.  This is the notion of "dense region" behind Figure 2
    and the UCR-DENSE workload.
    """
    num_windows = values.size // omega
    if num_windows < 2:
        raise ConfigurationError(
            f"need >= 2 windows, got {num_windows} (omega={omega})"
        )
    points = np.stack(
        [
            paa(values[index * omega : (index + 1) * omega], features)
            for index in range(num_windows)
        ]
    )
    spread = points.std(axis=0)
    spread[spread == 0.0] = 1.0
    cells = np.floor(points / (0.5 * spread)).astype(np.int64)
    population: Dict[Tuple[int, ...], int] = {}
    keys = [tuple(cell) for cell in cells]
    for key in keys:
        population[key] = population.get(key, 0) + 1
    return np.array([population[key] for key in keys], dtype=np.float64)


def dense_queries(
    values: np.ndarray,
    length: int,
    count: int,
    omega: int,
    features: int,
    seed: int = 0,
) -> List[np.ndarray]:
    """The UCR-DENSE workload: queries mixing dense and sparse windows.

    Real extracted subsequences are chosen to straddle a boundary
    between a dense PAA cluster and a sparse region: some of their
    windows map into a dense index region (flooding HLMJ's global
    queue) while others map into a sparse one (whose consumption would
    grow the lower bound fast) — exactly the Figure 2 pathology.
    Because the queries are genuine subsequences, exact matches exist
    and ``delta_cur`` behaves as in the paper's extracted-query setup.
    """
    _check(values, length, count)
    rng = np.random.default_rng(seed)
    densities = window_densities(values, omega, features)
    windows_per_query = length // omega
    if windows_per_query < 2:
        raise ConfigurationError(
            f"query length {length} spans fewer than 2 windows of size "
            f"{omega}; cannot mix dense and sparse windows"
        )
    half = max(1, windows_per_query // 2)
    num_starts = densities.size - windows_per_query + 1
    if num_starts < 1:
        raise ConfigurationError("data too short for the query length")
    # Score each aligned start by the contrast between its densest and
    # sparsest halves; high contrast = the mixed-density pathology.
    scores = np.empty(num_starts)
    for start in range(num_starts):
        block = densities[start : start + windows_per_query]
        first = block[:half].mean()
        second = block[half:].mean()
        high, low = max(first, second), min(first, second)
        scores[start] = high / (low + 1.0)
    ranked = np.argsort(scores)[::-1]
    pool = ranked[: max(count * 4, 8)]
    chosen = rng.choice(pool, size=count, replace=count > pool.size)
    return [
        values[start * omega : start * omega + length].copy()
        for start in (int(index) for index in chosen)
    ]


def pattern_queries(
    dataset: Dataset,
    family: str,
    length: int,
    count: int,
    seed: int = 0,
) -> List[np.ndarray]:
    """PIPE-style queries cut around injected pattern instances.

    ``family`` is one of the dataset's marker families ("BEND", "VALVE",
    "TEE" for PIPE).  Each query centres one injected instance inside
    surrounding carrier signal.
    """
    values = dataset.values
    _check(values, length, count)
    offsets = dataset.markers.get(family)
    if not offsets:
        raise ConfigurationError(
            f"dataset {dataset.name!r} has no markers for family "
            f"{family!r}; available: {sorted(dataset.markers)}"
        )
    rng = np.random.default_rng(seed)
    queries: List[np.ndarray] = []
    for _ in range(count):
        marker = int(rng.choice(offsets))
        start = min(
            max(0, marker - length // 4), values.size - length
        )
        queries.append(values[start : start + length].copy())
    return queries
