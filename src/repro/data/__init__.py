"""Datasets and query workloads.

The paper evaluates on five datasets (Table 2): UCR, PIPE, WALK, STOCK,
and MUSIC.  The originals are not redistributable, so
:mod:`repro.data.generators` provides synthetic stand-ins that preserve
the *indexing-relevant* structure of each source — in particular the
mixture of dense and sparse regions in PAA space that triggers the
MDMWP-scheduling problem (see DESIGN.md, "Substitutions").

:mod:`repro.data.queries` builds the paper's query workloads:
UCR-REGULAR (random extracted subsequences), UCR-DENSE (queries mixing
dense- and sparse-region windows), and the PIPE-BEND/VALVE/TEE pattern
queries.
"""

from repro.data.datasets import DATASET_NAMES, Dataset, load_dataset
from repro.data.generators import (
    music_like,
    pipe_like,
    stock_like,
    ucr_like,
    walk_like,
)
from repro.data.queries import (
    dense_queries,
    pattern_queries,
    regular_queries,
)

__all__ = [
    "Dataset",
    "DATASET_NAMES",
    "load_dataset",
    "ucr_like",
    "pipe_like",
    "walk_like",
    "stock_like",
    "music_like",
    "regular_queries",
    "dense_queries",
    "pattern_queries",
]
