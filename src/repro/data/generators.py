"""Synthetic stand-ins for the paper's five datasets (Table 2).

Each generator is deterministic in its seed and produces one long data
sequence (the paper likewise uses one long sequence per dataset, noting
it "has the same effect as one consisting of multiple data sequences").

What each stand-in preserves (see DESIGN.md for the substitution table):

* ``ucr_like`` — concatenated motif families of varying repetitiveness,
  like the UCR archive's mix of ECG/shape/sensor data.  Highly repeated
  families create *dense* PAA clusters; one-off excursions create
  *sparse* points, so both REGULAR and DENSE query workloads exist.
* ``pipe_like`` — a quasi-periodic inspection signal with long dense
  stretches plus three injected irregular pattern families (BEND, VALVE,
  TEE) whose positions are returned as markers; queries built around
  them map into dense *and* sparse regions simultaneously, the paper's
  worst case for HLMJ.
* ``walk_like`` — a Gaussian random walk (same model as the original).
* ``stock_like`` — a log-price walk with volatility clustering.
* ``music_like`` — piecewise-constant note levels with vibrato and
  transition glides, as in query-by-humming pitch contours.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

#: Marker dictionary: pattern family name -> start offsets.
Markers = Dict[str, List[int]]


def _check_size(n: int) -> None:
    if n < 64:
        raise ConfigurationError(f"dataset size must be >= 64, got {n}")


def _smooth_template(rng: np.random.Generator, length: int) -> np.ndarray:
    """A random smooth shape: integrated noise, low-pass filtered."""
    raw = rng.standard_normal(length).cumsum()
    kernel = np.ones(max(2, length // 16))
    kernel /= kernel.size
    smooth = np.convolve(raw, kernel, mode="same")
    spread = smooth.max() - smooth.min()
    if spread > 0:
        smooth = (smooth - smooth.min()) / spread
    return smooth


def ucr_like(n: int, seed: int = 0) -> np.ndarray:
    """UCR-archive-like mixture of motif families.

    The sequence is a concatenation of segments.  Each segment belongs
    to a *family*: a smooth template repeated with small jitter.  A few
    families repeat many times (dense PAA clusters); interleaved
    "excursion" segments are unique shapes (sparse points).
    """
    _check_size(n)
    rng = np.random.default_rng(seed)
    num_families = 8
    family_templates = [
        _smooth_template(rng, int(rng.integers(96, 256)))
        for _ in range(num_families)
    ]
    # Two families dominate and repeat with small jitter: their windows
    # form tight PAA clusters (the dense regions of Figure 2) while
    # still leaving top-k answers discriminative.  The remaining
    # families carry larger jitter; excursions are one-of-a-kind.
    family_weights = np.array([4.0, 3.0] + [1.0] * (num_families - 2))
    family_weights /= family_weights.sum()
    family_jitter = np.array([0.03, 0.05] + [0.1] * (num_families - 2))
    family_amp_spread = np.array(
        [0.05, 0.08] + [0.25] * (num_families - 2)
    )

    pieces: List[np.ndarray] = []
    total = 0
    level = 0.0
    while total < n:
        if rng.random() < 0.25:
            # Unique excursion: a one-off wandering segment — its
            # windows are one-of-a-kind (sparse PAA points).
            length = int(rng.integers(128, 384))
            piece = level + rng.standard_normal(length).cumsum() * 0.6
            level = float(piece[-1])
        else:
            family = int(rng.choice(num_families, p=family_weights))
            template = family_templates[family]
            amplitude = 2.0 * (
                1.0 + family_amp_spread[family] * rng.standard_normal()
            )
            jitter = family_jitter[family] * rng.standard_normal(
                template.size
            )
            # Dense families return to a fixed level so repeats are
            # near-identical in absolute value, not just in shape.
            base = 0.0 if family < 2 else level
            piece = base + amplitude * template + jitter
            level = float(piece[-1])
        pieces.append(piece)
        total += piece.size
    return np.concatenate(pieces)[:n]


#: Injected PIPE pattern lengths; queries are built around these.
_PIPE_PATTERN_LENGTH = 192


def _pipe_bend(rng: np.random.Generator) -> np.ndarray:
    """A smooth wide bump (pipeline bend signature)."""
    x = np.linspace(-3.0, 3.0, _PIPE_PATTERN_LENGTH)
    bump = 4.0 * np.exp(-x * x)
    return bump + 0.05 * rng.standard_normal(x.size)


def _pipe_valve(rng: np.random.Generator) -> np.ndarray:
    """Valve chatter: a burst of wide pressure pulses.

    Pulses are wider than twice the benchmark warping width so they
    survive both PAA averaging and envelope widening.  (Features
    narrower than ``2 * rho`` are invisible to envelope-based lower
    bounds — for *every* engine, including the paper's — so a
    spike-train signature would make the experiment meaningless.)
    """
    pattern = 0.1 * rng.standard_normal(_PIPE_PATTERN_LENGTH)
    pulse_width = 24
    for index, pulse_at in enumerate(
        np.linspace(16, _PIPE_PATTERN_LENGTH - pulse_width - 16, 4)
    ):
        start = int(pulse_at)
        level = 4.0 if index % 2 == 0 else -3.0
        pattern[start : start + pulse_width] += level * (
            1.0 + 0.1 * rng.standard_normal()
        )
    return pattern


def _pipe_tee(rng: np.random.Generator) -> np.ndarray:
    """A level shift with ringing (tee-junction signature)."""
    half = _PIPE_PATTERN_LENGTH // 2
    x = np.arange(_PIPE_PATTERN_LENGTH, dtype=np.float64)
    step = np.where(x < half, 0.0, 3.0)
    ringing = 1.5 * np.exp(-(x - half) / 24.0) * np.sin((x - half) / 3.0)
    ringing[: half] = 0.0
    return step + ringing + 0.05 * rng.standard_normal(x.size)


def pipe_like(n: int, seed: int = 0) -> Tuple[np.ndarray, Markers]:
    """Gas-pipeline-inspection-like signal with injected patterns.

    Returns ``(values, markers)`` where ``markers`` maps pattern family
    ("BEND", "VALVE", "TEE") to the list of injection offsets.  The
    carrier is a strongly periodic signal — pipe joints repeating every
    few dozen samples — whose windows all collapse into a few dense PAA
    clusters, exactly the regime where HLMJ's global queue drowns.
    """
    _check_size(n)
    rng = np.random.default_rng(seed)
    x = np.arange(n, dtype=np.float64)
    carrier = (
        1.2 * np.sin(2.0 * np.pi * x / 48.0)
        + 0.4 * np.sin(2.0 * np.pi * x / 12.0)
        + 0.05 * rng.standard_normal(n)
    )
    makers = {"BEND": _pipe_bend, "VALVE": _pipe_valve, "TEE": _pipe_tee}
    markers: Markers = {name: [] for name in makers}
    # Inject each family a handful of times, spaced out.
    num_injections = max(3, n // 8192)
    slots = np.linspace(
        _PIPE_PATTERN_LENGTH,
        n - 2 * _PIPE_PATTERN_LENGTH,
        num=3 * num_injections,
        dtype=int,
    )
    rng.shuffle(slots)
    for index, offset in enumerate(slots):
        name = ("BEND", "VALVE", "TEE")[index % 3]
        pattern = makers[name](rng)
        carrier[offset : offset + pattern.size] += pattern
        markers[name].append(int(offset))
    for name in markers:
        markers[name].sort()
    return carrier, markers


def walk_like(n: int, seed: int = 0) -> np.ndarray:
    """Gaussian random walk (the WALK dataset's generative model)."""
    _check_size(n)
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n).cumsum()


def stock_like(n: int, seed: int = 0) -> np.ndarray:
    """Log-price walk with volatility clustering (STOCK stand-in)."""
    _check_size(n)
    rng = np.random.default_rng(seed)
    volatility = np.empty(n)
    vol = 0.01
    for index in range(n):
        vol = 0.95 * vol + 0.05 * (0.01 + 0.04 * rng.random())
        volatility[index] = vol
    returns = volatility * rng.standard_normal(n)
    drift = 0.0001
    return 100.0 * np.exp((returns + drift).cumsum())


def music_like(n: int, seed: int = 0) -> np.ndarray:
    """Piecewise-constant pitch contour with vibrato (MUSIC stand-in).

    A slow tuning drift is superimposed so that repeats of the same
    note sequence are close but not byte-identical — real pitch
    trackers drift too, and without it the quantized scale collapses
    most windows into a handful of identical PAA points, which would
    deny *every* index method any selectivity.
    """
    _check_size(n)
    rng = np.random.default_rng(seed)
    values = np.empty(n)
    position = 0
    degree = 0
    scale = np.array([0, 2, 4, 5, 7, 9, 11], dtype=np.float64)
    while position < n:
        duration = int(rng.integers(16, 64))
        degree = int(np.clip(degree + rng.integers(-3, 4), -10, 10))
        octave, step = divmod(degree, len(scale))
        # Sung notes land slightly off-pitch with varying vibrato —
        # that intonation error is what keeps repeats of a melodic
        # figure distinguishable in a real F0 track.
        pitch = (
            12.0 * octave
            + scale[step]
            + 0.3 * rng.standard_normal()
        )
        end = min(n, position + duration)
        span = np.arange(end - position)
        depth = 0.1 + 0.15 * rng.random()
        vibrato = depth * np.sin(
            2.0 * np.pi * span / rng.uniform(6.0, 10.0)
        )
        values[position:end] = pitch + vibrato
        position = end
    # Short glides between notes plus pitch-tracking noise and drift.
    kernel = np.ones(4) / 4.0
    glided = np.convolve(values, kernel, mode="same")
    drift = 0.02 * rng.standard_normal(n).cumsum()
    return glided + drift + 0.05 * rng.standard_normal(n)
