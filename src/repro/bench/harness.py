"""Experiment harness: build once, sweep parameters, average metrics.

Mirrors the paper's methodology (Section 6.1): query sequences are
extracted from the data, each configuration is run over the whole query
set, and the three reported metrics — number of candidates, number of
page accesses, wall clock time — are averaged over the queries.

Because this reproduction simulates the disk (page accesses are counted,
not performed) and runs interpreted Python instead of the authors' C++,
raw wall-clock time measures the wrong machine.  The harness therefore
reports a **modeled wall time** built purely from operation counts, with
per-operation costs calibrated to the paper's 2011 testbed (Xeon 1.6 GHz,
SATA disk, 4 KB pages)::

    modeled = dtw_cells * 50 ns            # DP cell updates
            + lb_values * 100 ns           # LB_Keogh element comparisons
            + heap_pops * 2 us             # priority-queue maintenance
            + bloom_calls * 0.5 us
            + random_pages * 5 ms          # seek + rotate + transfer
            + sequential_pages * 0.1 ms    # elevator-sweep transfer

The counts are exact (they come from the instrumented engines); only the
unit costs are modeled.  Raw Python wall time is reported alongside for
transparency; EXPERIMENTS.md compares shapes against the modeled series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.api import SubsequenceDatabase
from repro.core.metrics import QueryStats
from repro.data.datasets import Dataset, load_dataset
from repro.data.queries import dense_queries, pattern_queries, regular_queries
from repro.engines.cost_density import CostDensityConfig

#: 2011-testbed unit costs (see module docstring).
DTW_CELL_SECONDS = 50e-9
LB_VALUE_SECONDS = 100e-9
HEAP_POP_SECONDS = 2e-6
BLOOM_PROBE_SECONDS = 0.5e-6
RANDOM_IO_SECONDS = 0.005
SEQUENTIAL_IO_SECONDS = 0.0001


def modeled_wall_time_s(
    stats: QueryStats, query_length: int, rho: int
) -> float:
    """Simulated 2011-testbed wall time from instrumented counts."""
    band = min(2 * rho + 1, query_length)
    cpu = (
        stats.dtw_computations * query_length * band * DTW_CELL_SECONDS
        + stats.lb_keogh_computations * query_length * LB_VALUE_SECONDS
        + stats.heap_pops * HEAP_POP_SECONDS
        + stats.bloom_calls * BLOOM_PROBE_SECONDS
    )
    io = (
        stats.random_page_accesses * RANDOM_IO_SECONDS
        + stats.sequential_page_accesses * SEQUENTIAL_IO_SECONDS
    )
    return cpu + io


@dataclass(frozen=True)
class EngineSpec:
    """One engine configuration as it appears in the paper's legends."""

    method: str
    deferred: bool = False
    cost_config: Optional[CostDensityConfig] = None
    label_override: Optional[str] = None

    @property
    def label(self) -> str:
        if self.label_override:
            return self.label_override
        base = {
            "seqscan": "SeqScan",
            "hlmj": "HLMJ",
            "hlmj-wg": "HLMJ-WG",
            "psm": "PSM",
            "ru": "RU",
            "ru-cost": "RU-COST",
        }[self.method]
        return f"{base}(D)" if self.deferred else base


#: The engine line-up of Figures 11–17 (deferred variants only, as the
#: paper switches to them after Experiment 1).
DEFERRED_LINEUP = (
    EngineSpec("seqscan"),
    EngineSpec("hlmj", deferred=True),
    EngineSpec("ru", deferred=True),
    EngineSpec("ru-cost", deferred=True),
)

#: Experiment 1's full line-up including non-deferred variants.
FULL_LINEUP = (
    EngineSpec("seqscan"),
    EngineSpec("hlmj"),
    EngineSpec("hlmj", deferred=True),
    EngineSpec("ru"),
    EngineSpec("ru", deferred=True),
    EngineSpec("ru-cost"),
    EngineSpec("ru-cost", deferred=True),
)


@dataclass
class WorkloadResult:
    """Averaged metrics for one (engine, workload) run."""

    label: str
    queries: int
    candidates: float
    page_accesses: float
    wall_time_s: float
    modeled_time_s: float
    extras: Dict[str, float] = field(default_factory=dict)

    def metric(self, name: str) -> float:
        if hasattr(self, name):
            return float(getattr(self, name))
        return self.extras[name]


class Harness:
    """Builds one database and runs engine/workload combinations.

    Parameters mirror Table 3: ``omega`` (window size), PAA ``features``,
    ``buffer_fraction``; the warping width is 5 % of each query length
    unless overridden per run.
    """

    def __init__(
        self,
        dataset: str,
        size: int,
        omega: int = 32,
        features: int = 4,
        seed: int = 0,
        buffer_fraction: float = 0.05,
        psm: bool = False,
    ) -> None:
        self.dataset: Dataset = load_dataset(dataset, size=size, seed=seed)
        self.omega = omega
        self.features = features
        self.seed = seed
        self.db = SubsequenceDatabase(
            omega=omega,
            features=features,
            buffer_fraction=buffer_fraction,
        )
        self.db.insert(0, self.dataset.values)
        self.db.build(psm=psm)

    # ------------------------------------------------------------------
    # Query workloads
    # ------------------------------------------------------------------

    def regular_queries(
        self, length: int, count: int, seed: Optional[int] = None
    ) -> List[np.ndarray]:
        """The REGULAR workload: random extracted subsequences.

        Dense-window offsets are screened out, matching the paper's
        description of the REGULAR sets as "having no very dense
        windows".
        """
        return regular_queries(
            self.dataset.values,
            length,
            count,
            seed=self.seed + 17 if seed is None else seed,
            omega=self.omega,
            features=self.features,
        )

    def dense_queries(
        self, length: int, count: int, seed: Optional[int] = None
    ) -> List[np.ndarray]:
        """The DENSE workload (Experiment 2)."""
        return dense_queries(
            self.dataset.values,
            length,
            count,
            omega=self.omega,
            features=self.features,
            seed=self.seed + 29 if seed is None else seed,
        )

    def pattern_queries(
        self,
        family: str,
        length: int,
        count: int,
        seed: Optional[int] = None,
    ) -> List[np.ndarray]:
        """PIPE-BEND/VALVE/TEE workloads."""
        return pattern_queries(
            self.dataset,
            family,
            length,
            count,
            seed=self.seed + 41 if seed is None else seed,
        )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(
        self,
        spec: EngineSpec,
        queries: Sequence[np.ndarray],
        k: int,
        rho: Optional[int] = None,
        buffer_fraction: Optional[float] = None,
    ) -> WorkloadResult:
        """Run a workload under one engine spec; metrics averaged.

        The buffer is cleared once before the workload (cold start);
        within the workload queries share the warm buffer, as in the
        paper's multi-query measurement.
        """
        if buffer_fraction is not None:
            self.db.resize_buffer(buffer_fraction)
        self.db.reset_cache()
        totals = QueryStats()
        modeled_total = 0.0
        for query in queries:
            effective_rho = (
                rho if rho is not None else max(1, int(0.05 * len(query)))
            )
            result = self.db.search(
                query,
                k=k,
                rho=effective_rho,
                method=spec.method,
                deferred=spec.deferred,
                cost_config=spec.cost_config,
            )
            totals.merge(result.stats)
            modeled_total += modeled_wall_time_s(
                result.stats, len(query), effective_rho
            )
        count = len(queries)
        return WorkloadResult(
            label=spec.label,
            queries=count,
            candidates=totals.candidates / count,
            page_accesses=totals.page_accesses / count,
            wall_time_s=totals.wall_time_s / count,
            modeled_time_s=modeled_total / count,
            extras={
                "heap_pops": totals.heap_pops / count,
                "node_expansions": totals.node_expansions / count,
                "bloom_calls": totals.bloom_calls / count,
                "dtw_computations": totals.dtw_computations / count,
                "pruned_by_lower_bound": totals.pruned_by_lower_bound
                / count,
                "duplicates_suppressed": totals.duplicates_suppressed
                / count,
            },
        )

    def run_lineup(
        self,
        specs: Sequence[EngineSpec],
        queries: Sequence[np.ndarray],
        k: int,
        rho: Optional[int] = None,
        buffer_fraction: Optional[float] = None,
    ) -> Dict[str, WorkloadResult]:
        """Run several engines over the same workload."""
        return {
            spec.label: self.run(
                spec, queries, k, rho=rho, buffer_fraction=buffer_fraction
            )
            for spec in specs
        }
