"""Formatting helpers for paper-style tables and series.

The figure benchmarks print one table per metric: rows are the sweep
values (``k``, buffer size, window size, ...), columns are engines —
the same series the paper plots.  ``format_speedups`` prints the
"RU-COST(D) outperforms X by N times" ratios the paper's prose quotes.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.bench.harness import WorkloadResult


def _format_value(value: float) -> str:
    if value >= 1000:
        return f"{value:,.0f}"
    if value >= 10:
        return f"{value:.1f}"
    return f"{value:.4f}"


def format_series_table(
    title: str,
    sweep_label: str,
    rows: Mapping[object, Mapping[str, WorkloadResult]],
    metric: str,
) -> str:
    """Render one metric across a sweep as a fixed-width table.

    ``rows`` maps sweep value -> (engine label -> result).
    """
    engine_labels = list(next(iter(rows.values())).keys())
    width = max(12, *(len(label) + 2 for label in engine_labels))
    header = f"{sweep_label:>10s} " + "".join(
        f"{label:>{width}s}" for label in engine_labels
    )
    lines = [title, "-" * len(header), header, "-" * len(header)]
    for sweep_value, results in rows.items():
        cells = "".join(
            f"{_format_value(results[label].metric(metric)):>{width}s}"
            for label in engine_labels
        )
        lines.append(f"{str(sweep_value):>10s} {cells}")
    lines.append("-" * len(header))
    return "\n".join(lines)


def format_speedups(
    rows: Mapping[object, Mapping[str, WorkloadResult]],
    metric: str,
    reference: str,
    others: Sequence[str],
) -> str:
    """Best-case ``other / reference`` ratios over the sweep.

    Reproduces the paper's "by up to N times" claims: for each competitor
    the maximum ratio across sweep values is reported.
    """
    best: Dict[str, float] = {}
    for results in rows.values():
        base = results[reference].metric(metric)
        if base <= 0:
            continue
        for label in others:
            ratio = results[label].metric(metric) / base
            if ratio > best.get(label, 0.0):
                best[label] = ratio
    parts = [
        f"{reference} vs {label}: up to {ratio:.1f}x"
        for label, ratio in best.items()
    ]
    return f"[{metric}] " + "; ".join(parts) if parts else "(no data)"
