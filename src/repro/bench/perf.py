"""Seeded perf-regression micro-benchmarks: ``python -m repro bench``.

Two suites, both fully deterministic in their *measured work* (inputs
are seeded; only wall-clock numbers vary between machines):

``kernels``
    Micro-benchmarks of the vectorized kernels (wavefront/batch DTW,
    batched LB_Keogh/LB_PAA/MINDIST, batched envelope and PAA
    construction) against the scalar oracles in
    :mod:`repro.core.reference`.  Every benchmark first *re-verifies
    exactness* on its own inputs, then times both sides and reports the
    speedup ratio.  Ratios are machine-relative, which makes them
    stable across hosts — the regression gate compares ratios, never
    raw wall time.

``engines``
    End-to-end engine runs on small seeded databases.  Everything
    recorded here except wall time is a deterministic counter (NUM_IO
    breakdown, candidates, prune counts, heap pops) or a result digest
    (the exact ``repr`` of every match distance), so the regression
    gate compares them **exactly**: a kernel change that silently
    shifts I/O accounting or a top-k set fails the gate even when it is
    faster.  Wall time is recorded for trend plots but never gated.

``tracing``
    Overhead and correctness of the observability plane
    (:mod:`repro.obs`): the same seeded query runs against a database
    with no tracer, a disabled tracer, and an enabled tracer.  The gate
    checks that the disabled-tracer run is *byte-identical* (counters
    and result digests) to the tracer-free run, that the traced run's
    per-span page accounting sums exactly to NUM_IO, and that the
    disabled tracer's wall-clock overhead stays under
    :data:`DISABLED_OVERHEAD_LIMIT`.  Enabled-mode overhead is recorded
    for the docs but never gated (tracing is opt-in).

``ingest``
    Online-ingest throughput and recovery scaling
    (:mod:`repro.ingest`): appends/second through the WAL-backed write
    path (fsync'd and unsynced), and wall-clock recovery time as a
    function of WAL length.  Every recovery run re-verifies exactness —
    the recovered database must return byte-identical matches,
    distances, and NUM_IO for a seeded query versus the live database
    it was replayed from.  The gate compares the exactness flags and
    the deterministic replay counters (records/batches per WAL length);
    throughput and recovery wall time are recorded for trend plots but
    never gated.

``serve``
    Concurrent load through the query service (:mod:`repro.serve`):
    eight client threads drive a mixed-engine k-NN workload through an
    in-process :class:`~repro.serve.QueryService` and every response is
    checked against a single-query oracle digest.  The gate requires
    every response exact (digest-identical) with zero errors, and
    applies the same dual criterion as the kernel gate to throughput:
    queries/second must not be *both* more than
    :data:`SERVE_QPS_TOLERANCE` below the baseline *and* below the
    absolute :data:`SERVE_QPS_FLOOR`.  Latency percentiles are recorded
    for trend plots but never gated (they are host-relative).

The committed ``benchmarks/baseline.json`` is the reference point;
:func:`compare` applies the gate (>20 % speedup regression, any
counter/digest drift, any exactness failure → non-zero exit).  Update
the baseline deliberately with ``python -m repro bench
--update-baseline`` and commit the diff (see ``docs/benchmarking.md``).
"""

from __future__ import annotations

import json
import math
import platform
import threading
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.distance import dtw_pow_batch
from repro.core.envelope import envelope_batch, query_envelope
from repro.core.lower_bounds import (
    lb_keogh_pow,
    lb_keogh_pow_batch,
    lb_paa_pow,
    lb_paa_pow_batch,
    mindist_pow,
    mindist_pow_batch,
)
from repro.core.paa import paa, paa_batch
from repro.core.reference import (
    reference_dtw_pow,
    reference_envelope,
    reference_lb_keogh_pow,
    reference_paa,
)

SCHEMA_VERSION = 1

#: Maximum allowed relative drop in a kernel speedup ratio before the
#: gate fails (the ISSUE's ">20% regression" contract).
SPEEDUP_TOLERANCE = 0.20

#: Absolute per-kernel speedup floors (machine-relative sanity bounds).
#: A drop below ``baseline * (1 - SPEEDUP_TOLERANCE)`` only fails the
#: gate when the measured ratio is *also* below this floor: the
#: relative criterion alone turned out to be brittle, because a
#: baseline recorded on an idle host encodes that host's scheduler
#: luck, and an honest re-run on a busier (or merely different) machine
#: can sit 25 % below it while still being an order of magnitude faster
#: than the scalar oracle.  The floors are set at roughly half the
#: slowest ratio observed across CI-class hosts, so they catch a
#: genuine vectorization regression (falling back to a Python loop
#: drops the ratio to ~1x) without tripping on environment drift.
SPEEDUP_FLOORS: Dict[str, float] = {
    "dtw_wavefront_len256": 6.0,
    "lb_keogh_block": 10.0,
    "lb_paa_mindist_block": 40.0,
    "envelope_batch": 2.5,
    "paa_batch": 15.0,
}

#: Relative tolerance for oracle comparisons whose summation order
#: differs (sequential Python accumulation vs pairwise/einsum).
ORACLE_RTOL = 1e-9

#: Maximum wall-clock ratio a *disabled* tracer may cost versus a
#: database built with no tracer at all.  The disabled path is a single
#: attribute load and branch per hook, so the true ratio is ~1.0; the
#: generous cap absorbs small-query timing noise while still catching
#: an accidentally always-on plane.
DISABLED_OVERHEAD_LIMIT = 1.5

#: Relative throughput drop the serve-suite gate tolerates before it
#: even consults the absolute floor.  Wide on purpose: a threaded
#: many-client benchmark on a CI box is scheduler-noisy, so only the
#: dual criterion (relative drop AND absolute floor) fails the gate —
#: the same design as the kernel speedup gate above.
SERVE_QPS_TOLERANCE = 0.5

#: Absolute queries-per-second floor for the serve load benchmark.  A
#: healthy service on the tiny seeded database clears hundreds of
#: queries per second; falling below this floor means the service
#: layer itself broke (a lock held across engine execution, a stalled
#: queue), not that the host is busy.
SERVE_QPS_FLOOR = 5.0

#: Relative drop in the sharded speedup ratio the shard-suite gate
#: tolerates before it consults the absolute floor.  Wide like the
#: serve tolerance: thread scheduling on shared CI hosts is noisy.
SHARD_SPEEDUP_TOLERANCE = 0.5

#: Absolute floor for the N-shard parallel speedup over the unsharded
#: database on the large configuration.  The target is >= 1.0 (sharding
#: must not cost latency when cores are available), but a single-core
#: host serialises the shard subqueries and legitimately lands below
#: it, so — exactly like the kernel and serve gates — only the dual
#: criterion (below the floor AND regressed versus the committed
#: baseline) fails the gate.  Exactness, by contrast, is gated
#: unconditionally.
SHARD_SPEEDUP_FLOOR = 1.0


@dataclass(frozen=True)
class Regression:
    """One gate failure, printable as ``suite/name: message``."""

    suite: str
    name: str
    message: str

    def __str__(self) -> str:
        return f"{self.suite}/{self.name}: {self.message}"


def _utc_now_iso() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def _best_seconds(fn: Callable[[], object], repeats: int) -> float:
    """Minimum wall time of ``fn`` over ``repeats`` runs (noise-robust)."""
    best = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= ORACLE_RTOL * max(1.0, abs(a), abs(b))


def _batch_repeats(repeats: int) -> int:
    """Repeat count for the vectorized side of a benchmark.

    The vectorized kernels run in milliseconds, so extra repeats cost
    almost nothing — and the gate compares speedup *ratios*, where a
    single slow-sampled millisecond denominator can fake a >20 %
    regression.  The expensive scalar side keeps the caller's count.
    """
    return max(repeats * 3, 9)


# ----------------------------------------------------------------------
# Kernel suite
# ----------------------------------------------------------------------


def _bench_dtw(rng: np.random.Generator, quick: bool) -> Dict[str, Any]:
    """Batch wavefront DTW vs the scalar DP at the paper-scale config."""
    length = 256
    rho = max(1, length // 10)  # the acceptance config: rho = 10% of len
    lanes = 64
    repeats = 2 if quick else 5
    query = rng.standard_normal(length)
    batch = rng.standard_normal((lanes, length))

    expected = np.array(
        [reference_dtw_pow(batch[i], query, rho) for i in range(lanes)]
    )
    got = dtw_pow_batch(batch, query, rho)
    exact = bool(np.array_equal(expected, got))

    scalar_s = _best_seconds(
        lambda: reference_dtw_pow(batch[0], query, rho), repeats
    )
    batch_s = _best_seconds(
        lambda: dtw_pow_batch(batch, query, rho), _batch_repeats(repeats)
    )
    per_candidate = batch_s / lanes
    return {
        "length": length,
        "rho": rho,
        "lanes": lanes,
        "exact": exact,
        "scalar_ms": scalar_s * 1e3,
        "batch_ms_per_candidate": per_candidate * 1e3,
        "speedup": scalar_s / per_candidate,
    }


def _bench_lb_keogh(
    rng: np.random.Generator, quick: bool
) -> Dict[str, Any]:
    """Batched LB_Keogh over a 1k-candidate block vs per-candidate calls."""
    length = 256
    rho = max(1, length // 10)
    candidates = 1000
    repeats = 3 if quick else 7
    query = rng.standard_normal(length)
    envelope = query_envelope(query, rho)
    block = rng.standard_normal((candidates, length))

    batch_vals = lb_keogh_pow_batch(envelope, block, 2.0)
    exact = all(
        lb_keogh_pow(envelope, block[i], 2.0) == batch_vals[i]
        for i in range(candidates)
    ) and all(
        _close(
            reference_lb_keogh_pow(
                envelope.lower, envelope.upper, block[i], 2.0
            ),
            float(batch_vals[i]),
        )
        for i in range(candidates)
    )

    def scalar_run() -> None:
        # The scalar baseline is the oracle loop (pre-vectorization
        # behavior); the per-candidate production call is timed too so
        # the report shows both gaps.
        for i in range(candidates):
            reference_lb_keogh_pow(
                envelope.lower, envelope.upper, block[i], 2.0
            )

    def single_run() -> None:
        for i in range(candidates):
            lb_keogh_pow(envelope, block[i], 2.0)

    scalar_s = _best_seconds(scalar_run, repeats)
    single_s = _best_seconds(single_run, repeats)
    batch_s = _best_seconds(
        lambda: lb_keogh_pow_batch(envelope, block, 2.0),
        _batch_repeats(repeats),
    )
    return {
        "length": length,
        "rho": rho,
        "candidates": candidates,
        "exact": exact,
        "scalar_ms": scalar_s * 1e3,
        "single_call_ms": single_s * 1e3,
        "batch_ms": batch_s * 1e3,
        "speedup": scalar_s / batch_s,
    }


def _bench_lb_paa(rng: np.random.Generator, quick: bool) -> Dict[str, Any]:
    """Batched LB_PAA/MINDIST entry scoring vs per-entry calls."""
    features = 8
    seg_len = 8
    entries = 1000
    repeats = 3 if quick else 7
    halves = np.sort(rng.standard_normal((2, features)), axis=0)
    paa_lower, paa_upper = halves[0], halves[1]
    points = rng.standard_normal((entries, features))
    rects = np.sort(rng.standard_normal((2, entries, features)), axis=0)

    point_vals = lb_paa_pow_batch(paa_lower, paa_upper, points, seg_len, 2.0)
    rect_vals = mindist_pow_batch(
        paa_lower, paa_upper, rects[0], rects[1], seg_len, 2.0
    )
    exact = all(
        lb_paa_pow(paa_lower, paa_upper, points[i], seg_len, 2.0)
        == point_vals[i]
        for i in range(entries)
    ) and all(
        mindist_pow(
            paa_lower, paa_upper, rects[0][i], rects[1][i], seg_len, 2.0
        )
        == rect_vals[i]
        for i in range(entries)
    )

    def scalar_run() -> None:
        for i in range(entries):
            lb_paa_pow(paa_lower, paa_upper, points[i], seg_len, 2.0)
            mindist_pow(
                paa_lower, paa_upper, rects[0][i], rects[1][i], seg_len, 2.0
            )

    def batch_run() -> None:
        lb_paa_pow_batch(paa_lower, paa_upper, points, seg_len, 2.0)
        mindist_pow_batch(
            paa_lower, paa_upper, rects[0], rects[1], seg_len, 2.0
        )

    scalar_s = _best_seconds(scalar_run, repeats)
    batch_s = _best_seconds(batch_run, _batch_repeats(repeats))
    return {
        "features": features,
        "entries": entries,
        "exact": exact,
        "scalar_ms": scalar_s * 1e3,
        "batch_ms": batch_s * 1e3,
        "speedup": scalar_s / batch_s,
    }


def _bench_envelope(
    rng: np.random.Generator, quick: bool
) -> Dict[str, Any]:
    """Batched envelope construction vs the per-sequence deque path."""
    length = 256
    rho = max(1, length // 10)
    rows = 256
    repeats = 3 if quick else 7
    batch = rng.standard_normal((rows, length))

    lower, upper = envelope_batch(batch, rho)
    exact = True
    for i in range(rows):
        ref_lower, ref_upper = reference_envelope(batch[i], rho)
        if not (
            np.array_equal(lower[i], ref_lower)
            and np.array_equal(upper[i], ref_upper)
        ):
            exact = False
            break

    def scalar_run() -> None:
        for i in range(rows):
            query_envelope(batch[i], rho)

    scalar_s = _best_seconds(scalar_run, repeats)
    batch_s = _best_seconds(
        lambda: envelope_batch(batch, rho), _batch_repeats(repeats)
    )
    return {
        "length": length,
        "rho": rho,
        "rows": rows,
        "exact": exact,
        "scalar_ms": scalar_s * 1e3,
        "batch_ms": batch_s * 1e3,
        "speedup": scalar_s / batch_s,
    }


def _bench_paa(rng: np.random.Generator, quick: bool) -> Dict[str, Any]:
    """Batched PAA of window blocks vs per-window calls."""
    omega = 32
    features = 4
    windows = 2048
    repeats = 3 if quick else 7
    batch = rng.standard_normal((windows, omega))

    vals = paa_batch(batch, features)
    exact = all(
        np.array_equal(vals[i], paa(batch[i], features))
        and np.array_equal(vals[i], reference_paa(batch[i], features))
        for i in range(windows)
    )

    def scalar_run() -> None:
        for i in range(windows):
            paa(batch[i], features)

    scalar_s = _best_seconds(scalar_run, repeats)
    batch_s = _best_seconds(
        lambda: paa_batch(batch, features), _batch_repeats(repeats)
    )
    return {
        "omega": omega,
        "features": features,
        "windows": windows,
        "exact": exact,
        "scalar_ms": scalar_s * 1e3,
        "batch_ms": batch_s * 1e3,
        "speedup": scalar_s / batch_s,
    }


_KERNEL_BENCHES: Dict[
    str, Callable[[np.random.Generator, bool], Dict[str, Any]]
] = {
    "dtw_wavefront_len256": _bench_dtw,
    "lb_keogh_block": _bench_lb_keogh,
    "lb_paa_mindist_block": _bench_lb_paa,
    "envelope_batch": _bench_envelope,
    "paa_batch": _bench_paa,
}


def run_kernel_suite(seed: int = 0, quick: bool = False) -> Dict[str, Any]:
    """Run every kernel micro-benchmark; returns the ``kernels`` block."""
    results: Dict[str, Any] = {}
    for name, bench in _KERNEL_BENCHES.items():
        rng = np.random.default_rng(seed + 1)
        results[name] = bench(rng, quick)
    return results


# ----------------------------------------------------------------------
# Engine suite
# ----------------------------------------------------------------------

#: The deterministic counters recorded (and gated exactly) per engine.
ENGINE_COUNTERS = (
    "candidates",
    "page_accesses",
    "sequential_page_accesses",
    "random_page_accesses",
    "logical_reads",
    "dtw_computations",
    "lb_keogh_computations",
    "heap_pops",
    "node_expansions",
    "bloom_calls",
    "deferred_flushes",
    "pruned_by_lower_bound",
    "pruned_by_lb_keogh",
    "duplicates_suppressed",
    "window_group_evaluations",
)


def _make_walk(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.asarray(rng.standard_normal(n).cumsum())


def _engine_record(result: object) -> Dict[str, Any]:
    stats = result.stats  # type: ignore[attr-defined]
    matches = result.matches  # type: ignore[attr-defined]
    return {
        "counters": {key: getattr(stats, key) for key in ENGINE_COUNTERS},
        "distances": [repr(match.distance) for match in matches],
        "matches": [[match.sid, match.start] for match in matches],
        "wall_time_s": stats.wall_time_s,
    }


def run_engine_suite(seed: int = 0) -> Dict[str, Any]:
    """End-to-end engine counters on small seeded databases.

    Deliberately matches the scale of the test-suite fixtures: big
    enough to exercise multi-level trees and deferred refinement, small
    enough to run in seconds.  The recorded counters are deterministic,
    so ``quick`` mode does not change this suite.
    """
    from repro import SubsequenceDatabase
    from repro.engines.range_search import RangeSearchEngine

    results: Dict[str, Any] = {}

    db = SubsequenceDatabase(omega=16, features=4, buffer_fraction=0.1)
    db.insert(0, _make_walk(3000, seed=seed + 11))
    db.insert(1, _make_walk(2200, seed=seed + 12))
    db.build()
    query = db.store.peek_subsequence(0, 640, 48).copy()
    for method in ("seqscan", "hlmj", "hlmj-wg", "ru", "ru-cost"):
        for deferred in (False, True):
            if method == "seqscan" and deferred:
                continue
            db.reset_cache()
            result = db.search(
                query, k=5, rho=2, method=method, deferred=deferred
            )
            label = f"{method}-d" if deferred else method
            results[label] = _engine_record(result)

    db.reset_cache()
    range_result = RangeSearchEngine(db.index).search(
        query, epsilon=2.5, rho=2
    )
    results["range"] = _engine_record(range_result)

    psm_db = SubsequenceDatabase(omega=8, features=4, buffer_fraction=0.1)
    psm_db.insert(0, _make_walk(900, seed=seed + 21))
    psm_db.insert(1, _make_walk(700, seed=seed + 22))
    psm_db.build(psm=True)
    psm_query = psm_db.store.peek_subsequence(0, 200, 32).copy()
    psm_db.reset_cache()
    results["psm"] = _engine_record(
        psm_db.search(psm_query, k=3, rho=1, method="psm")
    )
    return results


# ----------------------------------------------------------------------
# Tracing suite
# ----------------------------------------------------------------------


def run_tracing_suite(seed: int = 0, quick: bool = False) -> Dict[str, Any]:
    """Observability-plane overhead and conformance on a seeded query.

    Three identical databases run the same ``ru-cost`` query: one with
    no tracer, one with a disabled :class:`~repro.obs.Tracer`, and one
    with tracing enabled.  Counters and digests of the first two must
    match exactly; the third must conform (``buffer.fetch`` spans ==
    NUM_IO).  Wall times are recorded as machine-relative ratios.
    """
    from repro import SubsequenceDatabase
    from repro.obs import Tracer

    repeats = 3 if quick else 7

    def build(tracer: Optional[Tracer] = None) -> SubsequenceDatabase:
        db = SubsequenceDatabase(
            omega=16, features=4, buffer_fraction=0.1, tracer=tracer
        )
        db.insert(0, _make_walk(3000, seed=seed + 11))
        db.insert(1, _make_walk(2200, seed=seed + 12))
        db.build()
        return db

    plain = build()
    disabled = build(Tracer(enabled=False))
    enabled_tracer = Tracer(enabled=True)
    enabled = build(enabled_tracer)
    query = plain.store.peek_subsequence(0, 640, 48).copy()

    def run(db: SubsequenceDatabase) -> Any:
        db.reset_cache()
        return db.search(query, k=5, rho=2, method="ru-cost")

    plain_record = _engine_record(run(plain))
    disabled_record = _engine_record(run(disabled))
    counters_identical = (
        plain_record["counters"] == disabled_record["counters"]
        and plain_record["distances"] == disabled_record["distances"]
        and plain_record["matches"] == disabled_record["matches"]
    )
    traced = run(enabled)
    profile = traced.profile
    conformant = (
        profile is not None
        and profile.span_count("buffer.fetch") == traced.stats.page_accesses
    )

    def run_enabled() -> Any:
        # Reset the tracer between repeats so span accumulation across
        # timing runs does not approach the span cap.
        enabled_tracer.reset()
        return run(enabled)

    plain_s = _best_seconds(lambda: run(plain), repeats)
    disabled_s = _best_seconds(lambda: run(disabled), repeats)
    enabled_s = _best_seconds(run_enabled, repeats)
    return {
        "ru_cost_small": {
            "engine": "ru-cost",
            "counters_identical": counters_identical,
            "conformant": conformant,
            "untraced_ms": plain_s * 1e3,
            "disabled_ms": disabled_s * 1e3,
            "enabled_ms": enabled_s * 1e3,
            "disabled_overhead": disabled_s / plain_s,
            "enabled_overhead": enabled_s / plain_s,
        }
    }


# ----------------------------------------------------------------------
# Ingest suite
# ----------------------------------------------------------------------


def _ingest_fingerprint(db: Any, query: np.ndarray) -> List[Any]:
    """Exact (sid, start, distance-repr, NUM_IO) digest of a seeded query."""
    db.reset_cache()
    result = db.search(query, k=5, rho=2, method="ru")
    return [
        [
            [match.sid, match.start, repr(match.distance)]
            for match in result.matches
        ],
        result.stats.page_accesses,
    ]


def run_ingest_suite(seed: int = 0, quick: bool = False) -> Dict[str, Any]:
    """WAL-backed ingest throughput and recovery-time scaling.

    Throughput numbers are wall-clock and machine-relative (never
    gated).  Each recovery run also replays its WAL into a fresh
    database and checks that matches, distances, and NUM_IO are
    byte-identical to the live database — that ``exact`` flag and the
    replay counters are what the gate compares.
    """
    import os
    import shutil
    import tempfile

    from repro import SubsequenceDatabase
    from repro.ingest import WAL_NAME, create_durable, recover_database

    def make_db() -> SubsequenceDatabase:
        db = SubsequenceDatabase(omega=16, features=4, buffer_fraction=0.1)
        db.insert(0, _make_walk(2000, seed=seed + 31))
        db.insert(1, _make_walk(1500, seed=seed + 32))
        db.build()
        return db

    rng = np.random.default_rng(seed + 33)
    values = [
        np.asarray(rng.standard_normal(96).cumsum()) for _ in range(16)
    ]
    results: Dict[str, Any] = {}
    workdir = tempfile.mkdtemp(prefix="repro-bench-ingest-")
    try:
        batch = 16 if quick else 64
        for sync, label in ((True, "fsync"), (False, "nosync")):
            root = os.path.join(workdir, f"tput-{label}")
            db = make_db()
            wal = create_durable(db, root, sync=sync)
            try:
                started = time.perf_counter()
                for i in range(batch):
                    db.append_sequence(100 + i, values[i % len(values)])
                elapsed = time.perf_counter() - started
                results[f"append_throughput_{label}"] = {
                    "appends": batch,
                    "values_per_append": len(values[0]),
                    "seconds": elapsed,
                    "appends_per_s": batch / elapsed,
                    "wal_bytes": os.path.getsize(
                        os.path.join(root, WAL_NAME)
                    ),
                }
            finally:
                wal.close()

        recovery: Dict[str, Any] = {}
        for length in (8, 32) if quick else (8, 32, 128):
            root = os.path.join(workdir, f"recover-{length}")
            db = make_db()
            wal = create_durable(db, root, sync=False)
            try:
                for i in range(length):
                    db.append_sequence(200 + i, values[i % len(values)])
            finally:
                wal.close()
            started = time.perf_counter()
            recovered, report = recover_database(root, sync=False)
            recover_s = time.perf_counter() - started
            query = db.store.peek_subsequence(0, 640, 48).copy()
            exact = _ingest_fingerprint(db, query) == _ingest_fingerprint(
                recovered, query
            )
            recovery[f"wal_{length}"] = {
                "appended": length,
                "replayed_records": report.replayed_records,
                "replayed_batches": report.replayed_batches,
                "recover_ms": recover_s * 1e3,
                "exact": exact,
            }
            recovered.wal.close()
        results["recovery"] = recovery
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return results


# ----------------------------------------------------------------------
# Serve suite
# ----------------------------------------------------------------------


def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 1])."""
    ordered = sorted(values)
    if not ordered:
        return math.nan
    rank = int(math.ceil(q * len(ordered))) - 1
    return ordered[min(len(ordered) - 1, max(0, rank))]


def run_serve_suite(seed: int = 0, quick: bool = False) -> Dict[str, Any]:
    """Concurrent mixed-engine load through :class:`QueryService`.

    Eight client threads fire k-NN requests across four engines at a
    four-worker service and compare every response to a single-query
    oracle digest computed up front.  ``exact``/``errors`` are the
    gated facts; throughput gets the dual-criterion gate; latency
    percentiles are trend-only.
    """
    from repro import SubsequenceDatabase
    from repro.serve import QueryRequest, QueryService, ServiceConfig

    db = SubsequenceDatabase(omega=16, features=4, buffer_fraction=0.1)
    db.insert(0, _make_walk(3000, seed=seed + 41))
    db.insert(1, _make_walk(2200, seed=seed + 42))
    db.build()
    query = tuple(
        float(v) for v in db.store.peek_subsequence(0, 640, 48)
    )

    methods = ("seqscan", "hlmj", "ru", "ru-cost")
    oracle: Dict[str, List[List[Any]]] = {}
    for method in methods:
        db.reset_cache()
        result = db.search(
            np.asarray(query), k=5, rho=2, method=method
        )
        oracle[method] = [
            [match.sid, match.start, repr(match.distance)]
            for match in result.matches
        ]

    clients = 8
    per_client = 4 if quick else 12
    config = ServiceConfig(workers=4, queue_capacity=256)
    latencies: List[float] = []
    queue_waits: List[float] = []
    errors = 0
    mismatches = 0
    record_lock = threading.Lock()

    def client(idx: int, barrier: threading.Barrier) -> None:
        nonlocal errors, mismatches
        barrier.wait()
        for i in range(per_client):
            method = methods[(idx + i) % len(methods)]
            request = QueryRequest(
                kind="knn",
                query=query,
                tenant=f"bench-{idx}",
                k=5,
                rho=2,
                method=method,
            )
            started = time.perf_counter()
            try:
                response = service.query(request, timeout=120.0)
            except Exception:
                with record_lock:
                    errors += 1
                continue
            elapsed = time.perf_counter() - started
            digest = [
                [match.sid, match.start, repr(match.distance)]
                for match in response.result.matches
            ]
            with record_lock:
                latencies.append(elapsed)
                queue_waits.append(response.queue_wait_s)
                if not response.exact or digest != oracle[method]:
                    mismatches += 1

    with QueryService(db, config=config) as service:
        barrier = threading.Barrier(clients + 1)
        threads = [
            threading.Thread(target=client, args=(idx, barrier))
            for idx in range(clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started

    completed = len(latencies)
    return {
        "load_mixed_knn": {
            "clients": clients,
            "workers": config.workers,
            "requests": clients * per_client,
            "completed": completed,
            "errors": errors,
            "exact": errors == 0 and mismatches == 0,
            "throughput_qps": completed / elapsed if elapsed > 0 else 0.0,
            "p50_ms": _percentile(latencies, 0.50) * 1e3,
            "p99_ms": _percentile(latencies, 0.99) * 1e3,
            "mean_queue_wait_ms": (
                sum(queue_waits) / len(queue_waits) * 1e3
                if queue_waits
                else 0.0
            ),
        }
    }


def run_shard_suite(seed: int = 0, quick: bool = False) -> Dict[str, Any]:
    """Sharded scaling versus the unsharded database (large config).

    Builds one large multi-sequence workload twice — unsharded and
    N-shard with the thread executor — and times the same ranked query
    on both.  ``exact`` (byte-identical matches) is gated
    unconditionally; ``speedup`` gets the dual-criterion gate
    (:data:`SHARD_SPEEDUP_FLOOR` + :data:`SHARD_SPEEDUP_TOLERANCE`)
    because a single-core host cannot show parallel speedup.
    """
    from repro import SubsequenceDatabase
    from repro.shard import ShardedDatabase

    sequences = {
        sid: _make_walk(4000, seed=seed + 60 + sid) for sid in range(4)
    }
    oracle = SubsequenceDatabase(omega=16, features=4, buffer_fraction=0.1)
    for sid, values in sequences.items():
        oracle.insert(sid, values)
    oracle.build()
    query = oracle.store.peek_subsequence(0, 1200, 64).copy()
    repeats = 2 if quick else 4

    results: Dict[str, Any] = {}
    for num_shards in (2, 4):
        sharded = ShardedDatabase(
            num_shards=num_shards,
            policy="hash",
            executor="thread",
            omega=16,
            features=4,
            buffer_fraction=0.1,
        )
        for sid, values in sequences.items():
            sharded.insert(sid, values)
        sharded.build()
        try:
            gold = oracle.search(query, k=10, rho=2, method="ru-cost")
            merged = sharded.search(query, k=10, rho=2, method="ru-cost")
            digest_gold = [
                [m.sid, m.start, repr(m.distance)] for m in gold.matches
            ]
            digest_shard = [
                [m.sid, m.start, repr(m.distance)] for m in merged.matches
            ]
            num_io_ok = merged.stats.page_accesses == sum(
                stats.page_accesses
                for stats in merged.shard_stats.values()
            )

            unsharded_s = _best_seconds(
                lambda: oracle.search(query, k=10, rho=2, method="ru-cost"),
                repeats,
            )
            sharded_s = _best_seconds(
                lambda: sharded.search(
                    query, k=10, rho=2, method="ru-cost"
                ),
                repeats,
            )
            results[f"ru_cost_shards{num_shards}"] = {
                "shards": num_shards,
                "executor": "thread",
                "unsharded_ms": unsharded_s * 1e3,
                "sharded_ms": sharded_s * 1e3,
                "speedup": unsharded_s / sharded_s,
                "exact": digest_gold == digest_shard and num_io_ok,
            }
        finally:
            sharded.close()
    return results


# ----------------------------------------------------------------------
# Storage backend suite
# ----------------------------------------------------------------------


def run_storage_suite(seed: int = 0, quick: bool = False) -> Dict[str, Any]:
    """File versus mmap backend on the same workload (large config).

    Builds one seeded database twice — once per backend — and times the
    same cold-cache ranked query on both.  ``exact`` gates byte-identical
    matches, distances, *and* NUM_IO between the backends (the mmap
    backend is a page-cache substitution, so every deterministic counter
    must survive it); wall time is recorded but never gated, since the
    zero-copy win depends on the host.  A second entry repeats the
    comparison under z-normalized matching.
    """
    from repro import SubsequenceDatabase

    repeats = 2 if quick else 4
    walks = {0: _make_walk(3000, seed=seed + 11),
             1: _make_walk(2200, seed=seed + 12)}

    def build(backend: str) -> "SubsequenceDatabase":
        db = SubsequenceDatabase(
            omega=16, features=4, buffer_fraction=0.1, backend=backend
        )
        for sid, values in walks.items():
            db.insert(sid, values)
        db.build()
        return db

    results: Dict[str, Any] = {}
    file_db = build("file")
    mmap_db = build("mmap")
    query = file_db.store.peek_subsequence(0, 640, 48).copy()
    try:
        for normalize in (False, True):
            records = {}
            for name, db in (("file", file_db), ("mmap", mmap_db)):
                db.reset_cache()
                result = db.search(
                    query, k=5, rho=2, method="ru-cost", normalize=normalize
                )
                seconds = _best_seconds(
                    lambda db=db: (
                        db.reset_cache(),
                        db.search(
                            query,
                            k=5,
                            rho=2,
                            method="ru-cost",
                            normalize=normalize,
                        ),
                    ),
                    repeats,
                )
                records[name] = {
                    "record": _engine_record(result),
                    "cold_ms": seconds * 1e3,
                }
            file_rec = records["file"]["record"]
            mmap_rec = records["mmap"]["record"]
            exact = (
                file_rec["counters"] == mmap_rec["counters"]
                and file_rec["distances"] == mmap_rec["distances"]
                and file_rec["matches"] == mmap_rec["matches"]
            )
            label = "ru_cost_znorm" if normalize else "ru_cost_raw"
            results[label] = {
                "normalize": normalize,
                "file_ms": records["file"]["cold_ms"],
                "mmap_ms": records["mmap"]["cold_ms"],
                "speedup": (
                    records["file"]["cold_ms"] / records["mmap"]["cold_ms"]
                ),
                "page_accesses": file_rec["counters"]["page_accesses"],
                "exact": exact,
            }
    finally:
        mmap_db.close()
        file_db.close()
    return results


# ----------------------------------------------------------------------
# Reports, baselines, and the gate
# ----------------------------------------------------------------------


def run_suites(
    suites: Sequence[str], seed: int = 0, quick: bool = False
) -> Dict[str, Any]:
    """Run the requested suites into one schema-versioned report."""
    report: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "kind": "repro-bench",
        "created": _utc_now_iso(),
        "seed": seed,
        "quick": quick,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "suites": {},
    }
    suite_block: Dict[str, Any] = {}
    if "kernels" in suites:
        suite_block["kernels"] = run_kernel_suite(seed=seed, quick=quick)
    if "engines" in suites:
        suite_block["engines"] = run_engine_suite(seed=seed)
    if "tracing" in suites:
        suite_block["tracing"] = run_tracing_suite(seed=seed, quick=quick)
    if "ingest" in suites:
        suite_block["ingest"] = run_ingest_suite(seed=seed, quick=quick)
    if "serve" in suites:
        suite_block["serve"] = run_serve_suite(seed=seed, quick=quick)
    if "shard" in suites:
        suite_block["shard"] = run_shard_suite(seed=seed, quick=quick)
    if "storage" in suites:
        suite_block["storage"] = run_storage_suite(seed=seed, quick=quick)
    report["suites"] = suite_block
    return report


def compare(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> List[Regression]:
    """Apply the regression gate; empty list means the gate passes.

    * every kernel bench must remain exact, and its speedup must not be
      *both* more than :data:`SPEEDUP_TOLERANCE` below the baseline
      ratio *and* below its absolute :data:`SPEEDUP_FLOORS` bound —
      the dual criterion separates environment drift (relative drop,
      still far above the floor) from real regressions (a de-vectorized
      kernel falls through both);
    * every engine counter and result digest must match the baseline
      byte for byte (wall time is never compared).

    Only suites present in *both* reports are compared, so a
    kernels-only CI run checks kernels without requiring engine data.
    """
    regressions: List[Regression] = []
    current_suites = current.get("suites", {})
    baseline_suites = baseline.get("suites", {})

    base_kernels = baseline_suites.get("kernels")
    cur_kernels = current_suites.get("kernels")
    if base_kernels is not None and cur_kernels is not None:
        for name, base in base_kernels.items():
            cur = cur_kernels.get(name)
            if cur is None:
                regressions.append(
                    Regression("kernels", name, "benchmark disappeared")
                )
                continue
            if not cur.get("exact", False):
                regressions.append(
                    Regression(
                        "kernels",
                        name,
                        "kernel no longer matches the scalar oracle",
                    )
                )
            relative_floor = float(base["speedup"]) * (
                1.0 - SPEEDUP_TOLERANCE
            )
            absolute_floor = SPEEDUP_FLOORS.get(name)
            speedup = float(cur["speedup"])
            below_relative = speedup < relative_floor
            # Benches without a registered floor keep the pure relative
            # gate (safe default for newly added kernels).
            below_absolute = (
                absolute_floor is None or speedup < absolute_floor
            )
            if below_relative and below_absolute:
                detail = (
                    f"speedup {speedup:.2f}x fell below "
                    f"{relative_floor:.2f}x "
                    f"(baseline {float(base['speedup']):.2f}x - "
                    f"{SPEEDUP_TOLERANCE:.0%})"
                )
                if absolute_floor is not None:
                    detail += (
                        f" and below the absolute floor "
                        f"{absolute_floor:.2f}x"
                    )
                regressions.append(Regression("kernels", name, detail))

    base_engines = baseline_suites.get("engines")
    cur_engines = current_suites.get("engines")
    if base_engines is not None and cur_engines is not None:
        for label, base in base_engines.items():
            cur = cur_engines.get(label)
            if cur is None:
                regressions.append(
                    Regression("engines", label, "engine run disappeared")
                )
                continue
            for key, base_value in base["counters"].items():
                cur_value = cur["counters"].get(key)
                if cur_value != base_value:
                    regressions.append(
                        Regression(
                            "engines",
                            label,
                            f"counter {key} drifted: "
                            f"{base_value} -> {cur_value}",
                        )
                    )
            for key in ("distances", "matches"):
                if cur.get(key) != base.get(key):
                    regressions.append(
                        Regression(
                            "engines",
                            label,
                            f"result digest {key!r} drifted from baseline",
                        )
                    )

    base_tracing = baseline_suites.get("tracing")
    cur_tracing = current_suites.get("tracing")
    if base_tracing is not None and cur_tracing is not None:
        for label in base_tracing:
            cur = cur_tracing.get(label)
            if cur is None:
                regressions.append(
                    Regression("tracing", label, "tracing run disappeared")
                )
                continue
            if not cur.get("counters_identical", False):
                regressions.append(
                    Regression(
                        "tracing",
                        label,
                        "disabled tracer changed counters or results "
                        "(the untraced path must be byte-identical)",
                    )
                )
            if not cur.get("conformant", False):
                regressions.append(
                    Regression(
                        "tracing",
                        label,
                        "buffer.fetch span count != NUM_IO "
                        "(span-level page accounting broke)",
                    )
                )
            overhead = float(cur.get("disabled_overhead", math.inf))
            if overhead > DISABLED_OVERHEAD_LIMIT:
                regressions.append(
                    Regression(
                        "tracing",
                        label,
                        f"disabled-tracer overhead {overhead:.2f}x exceeds "
                        f"{DISABLED_OVERHEAD_LIMIT:.2f}x",
                    )
                )

    base_ingest = baseline_suites.get("ingest")
    cur_ingest = current_suites.get("ingest")
    if base_ingest is not None and cur_ingest is not None:
        base_recovery = base_ingest.get("recovery", {})
        cur_recovery = cur_ingest.get("recovery", {})
        for label, base in base_recovery.items():
            cur = cur_recovery.get(label)
            if cur is None:
                regressions.append(
                    Regression("ingest", label, "recovery run disappeared")
                )
                continue
            if not cur.get("exact", False):
                regressions.append(
                    Regression(
                        "ingest",
                        label,
                        "recovered database no longer byte-identical "
                        "(matches, distances, or NUM_IO drifted)",
                    )
                )
            for key in ("replayed_records", "replayed_batches"):
                if cur.get(key) != base.get(key):
                    regressions.append(
                        Regression(
                            "ingest",
                            label,
                            f"counter {key} drifted: "
                            f"{base.get(key)} -> {cur.get(key)}",
                        )
                    )

    base_serve = baseline_suites.get("serve")
    cur_serve = current_suites.get("serve")
    if base_serve is not None and cur_serve is not None:
        for label, base in base_serve.items():
            cur = cur_serve.get(label)
            if cur is None:
                regressions.append(
                    Regression("serve", label, "serve run disappeared")
                )
                continue
            if not cur.get("exact", False):
                regressions.append(
                    Regression(
                        "serve",
                        label,
                        "service responses no longer match the "
                        "single-query oracle (or were not exact)",
                    )
                )
            if int(cur.get("errors", 0)) != 0:
                regressions.append(
                    Regression(
                        "serve",
                        label,
                        f"{cur.get('errors')} request(s) errored under "
                        f"an unsaturated load",
                    )
                )
            base_qps = float(base.get("throughput_qps", 0.0))
            qps = float(cur.get("throughput_qps", 0.0))
            relative_floor = base_qps * (1.0 - SERVE_QPS_TOLERANCE)
            if qps < relative_floor and qps < SERVE_QPS_FLOOR:
                regressions.append(
                    Regression(
                        "serve",
                        label,
                        f"throughput {qps:.1f} qps fell below "
                        f"{relative_floor:.1f} qps (baseline "
                        f"{base_qps:.1f} - {SERVE_QPS_TOLERANCE:.0%}) "
                        f"and below the absolute floor "
                        f"{SERVE_QPS_FLOOR:.1f} qps",
                    )
                )

    base_shard = baseline_suites.get("shard")
    cur_shard = current_suites.get("shard")
    if base_shard is not None and cur_shard is not None:
        for label, base in base_shard.items():
            cur = cur_shard.get(label)
            if cur is None:
                regressions.append(
                    Regression("shard", label, "shard run disappeared")
                )
                continue
            if not cur.get("exact", False):
                regressions.append(
                    Regression(
                        "shard",
                        label,
                        "sharded answer no longer byte-identical to the "
                        "unsharded oracle (or NUM_IO stopped adding up)",
                    )
                )
            base_speedup = float(base.get("speedup", 0.0))
            speedup = float(cur.get("speedup", 0.0))
            relative_floor = base_speedup * (
                1.0 - SHARD_SPEEDUP_TOLERANCE
            )
            if (
                speedup < SHARD_SPEEDUP_FLOOR
                and speedup < relative_floor
            ):
                regressions.append(
                    Regression(
                        "shard",
                        label,
                        f"parallel speedup {speedup:.2f}x fell below the "
                        f"{SHARD_SPEEDUP_FLOOR:.1f}x floor and below "
                        f"{relative_floor:.2f}x (baseline "
                        f"{base_speedup:.2f}x - "
                        f"{SHARD_SPEEDUP_TOLERANCE:.0%})",
                    )
                )

    base_storage = baseline_suites.get("storage")
    cur_storage = current_suites.get("storage")
    if base_storage is not None and cur_storage is not None:
        for label, base in base_storage.items():
            cur = cur_storage.get(label)
            if cur is None:
                regressions.append(
                    Regression("storage", label, "storage run disappeared")
                )
                continue
            # Exactness (and the pinned NUM_IO) gate unconditionally;
            # the mmap-vs-file timing ratio is host-dependent and is
            # recorded but never gated.
            if not cur.get("exact", False):
                regressions.append(
                    Regression(
                        "storage",
                        label,
                        "file and mmap backends no longer byte-identical "
                        "(matches, distances, or counters drifted)",
                    )
                )
            if cur.get("page_accesses") != base.get("page_accesses"):
                regressions.append(
                    Regression(
                        "storage",
                        label,
                        f"NUM_IO drifted: {base.get('page_accesses')} -> "
                        f"{cur.get('page_accesses')}",
                    )
                )
    return regressions


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of a bench report."""
    lines: List[str] = []
    suites = report.get("suites", {})
    kernels = suites.get("kernels")
    if kernels:
        lines.append(f"{'kernel':>24s} {'scalar':>12s} {'batch':>12s} "
                     f"{'speedup':>9s} {'exact':>6s}")
        for name, bench in kernels.items():
            scalar_ms = float(bench["scalar_ms"])
            batch_ms = float(
                bench.get("batch_ms", bench.get("batch_ms_per_candidate"))
            )
            lines.append(
                f"{name:>24s} {scalar_ms:>10.3f}ms {batch_ms:>10.3f}ms "
                f"{float(bench['speedup']):>8.2f}x "
                f"{'yes' if bench['exact'] else 'NO':>6s}"
            )
    engines = suites.get("engines")
    if engines:
        lines.append("")
        lines.append(
            f"{'engine':>10s} {'candidates':>11s} {'pages':>7s} "
            f"{'dtw':>7s} {'pops':>7s} {'ms':>8s}"
        )
        for label, record in engines.items():
            counters = record["counters"]
            lines.append(
                f"{label:>10s} {counters['candidates']:>11,d} "
                f"{counters['page_accesses']:>7,d} "
                f"{counters['dtw_computations']:>7,d} "
                f"{counters['heap_pops']:>7,d} "
                f"{float(record['wall_time_s']) * 1e3:>8.1f}"
            )
    tracing = suites.get("tracing")
    if tracing:
        lines.append("")
        lines.append(
            f"{'tracing':>16s} {'untraced':>11s} {'disabled':>11s} "
            f"{'enabled':>11s} {'identical':>10s} {'conformant':>11s}"
        )
        for label, record in tracing.items():
            lines.append(
                f"{label:>16s} {float(record['untraced_ms']):>9.1f}ms "
                f"{float(record['disabled_ms']):>9.1f}ms "
                f"{float(record['enabled_ms']):>9.1f}ms "
                f"{'yes' if record['counters_identical'] else 'NO':>10s} "
                f"{'yes' if record['conformant'] else 'NO':>11s}"
            )
    ingest = suites.get("ingest")
    if ingest:
        lines.append("")
        for label in ("append_throughput_fsync", "append_throughput_nosync"):
            record = ingest.get(label)
            if record:
                lines.append(
                    f"{label:>26s} {record['appends']:>5d} appends "
                    f"{float(record['appends_per_s']):>10.1f}/s "
                    f"({record['wal_bytes']:,d} WAL bytes)"
                )
        recovery = ingest.get("recovery")
        if recovery:
            lines.append(
                f"{'recovery':>16s} {'records':>8s} {'batches':>8s} "
                f"{'ms':>8s} {'exact':>6s}"
            )
            for label, record in recovery.items():
                lines.append(
                    f"{label:>16s} {record['replayed_records']:>8,d} "
                    f"{record['replayed_batches']:>8,d} "
                    f"{float(record['recover_ms']):>8.1f} "
                    f"{'yes' if record['exact'] else 'NO':>6s}"
                )
    serve = suites.get("serve")
    if serve:
        lines.append("")
        lines.append(
            f"{'serve':>16s} {'qps':>8s} {'p50':>9s} {'p99':>9s} "
            f"{'errors':>7s} {'exact':>6s}"
        )
        for label, record in serve.items():
            lines.append(
                f"{label:>16s} {float(record['throughput_qps']):>8.1f} "
                f"{float(record['p50_ms']):>7.1f}ms "
                f"{float(record['p99_ms']):>7.1f}ms "
                f"{int(record['errors']):>7d} "
                f"{'yes' if record['exact'] else 'NO':>6s}"
            )
    shard = suites.get("shard")
    if shard:
        lines.append("")
        lines.append(
            f"{'shard':>20s} {'unsharded':>11s} {'sharded':>11s} "
            f"{'speedup':>9s} {'exact':>6s}"
        )
        for label, record in shard.items():
            lines.append(
                f"{label:>20s} {float(record['unsharded_ms']):>9.1f}ms "
                f"{float(record['sharded_ms']):>9.1f}ms "
                f"{float(record['speedup']):>8.2f}x "
                f"{'yes' if record['exact'] else 'NO':>6s}"
            )
    storage = suites.get("storage")
    if storage:
        lines.append("")
        lines.append(
            f"{'storage':>16s} {'file':>11s} {'mmap':>11s} "
            f"{'speedup':>9s} {'pages':>7s} {'exact':>6s}"
        )
        for label, record in storage.items():
            lines.append(
                f"{label:>16s} {float(record['file_ms']):>9.1f}ms "
                f"{float(record['mmap_ms']):>9.1f}ms "
                f"{float(record['speedup']):>8.2f}x "
                f"{record['page_accesses']:>7,d} "
                f"{'yes' if record['exact'] else 'NO':>6s}"
            )
    return "\n".join(lines)


def load_report(path: str) -> Dict[str, Any]:
    """Load and minimally validate a bench JSON report."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or data.get("kind") != "repro-bench":
        raise ValueError(f"{path}: not a repro-bench report")
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema {data.get('schema')} != {SCHEMA_VERSION}"
        )
    return data


def write_report(report: Dict[str, Any], path: str) -> None:
    """Write a bench JSON report with stable formatting."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")


def default_json_name(now: Optional[datetime] = None) -> str:
    """The conventional committed report name: ``BENCH_<date>.json``."""
    stamp = (now or datetime.now(timezone.utc)).strftime("%Y-%m-%d")
    return f"BENCH_{stamp}.json"
