"""Consolidate benchmark result files into one report.

``pytest benchmarks/ --benchmark-only`` appends each figure's tables to
``benchmarks/results/<figure>.txt``; :func:`build_report` stitches them
into a single document (used to refresh RESULTS.md after a run), and
:func:`extract_speedups` pulls the "up to N×" headline lines for quick
comparison against the paper's claims.
"""

from __future__ import annotations

import pathlib
import re
from typing import Dict, List, Optional, Sequence, Union

PathLike = Union[str, pathlib.Path]

#: Figure ordering for the consolidated report.
FIGURE_ORDER = [
    "table2_datasets",
    "table3_parameters",
    "fig11_effect_of_k",
    "fig12_dense_queries",
    "fig13_pipe_query_types",
    "fig14_buffer_size",
    "fig15_window_size",
    "fig16_query_length",
    "fig17_other_datasets",
    "fig18_psm_comparison",
    "ablation_rucost",
    "ablation_generalmatch",
    "build_methods",
]

_SPEEDUP_LINE = re.compile(r"^\[(?P<metric>[\w_]+)\] (?P<body>.+)$")


def load_results(results_dir: PathLike) -> Dict[str, str]:
    """Read every ``<figure>.txt`` under the results directory."""
    directory = pathlib.Path(results_dir)
    results: Dict[str, str] = {}
    if not directory.is_dir():
        return results
    for path in sorted(directory.glob("*.txt")):
        results[path.stem] = path.read_text().rstrip()
    return results


def extract_speedups(results: Dict[str, str]) -> List[str]:
    """All "up to N×" headline lines, prefixed with their figure."""
    lines: List[str] = []
    for figure in FIGURE_ORDER:
        text = results.get(figure)
        if text is None:
            continue
        for line in text.splitlines():
            if _SPEEDUP_LINE.match(line.strip()):
                lines.append(f"{figure}: {line.strip()}")
    return lines


def build_report(results_dir: PathLike, title: str = "Benchmark results") -> str:
    """One markdown-ish document with every figure's recorded series."""
    results = load_results(results_dir)
    sections: List[str] = [f"# {title}", ""]
    headlines = extract_speedups(results)
    if headlines:
        sections.append("## Headline ratios")
        sections.extend(f"* {line}" for line in headlines)
        sections.append("")
    covered = set()
    for figure in FIGURE_ORDER:
        if figure not in results:
            continue
        covered.add(figure)
        sections.append(f"## {figure}")
        sections.append("```")
        sections.append(results[figure])
        sections.append("```")
        sections.append("")
    for figure, text in results.items():
        if figure in covered:
            continue
        sections.append(f"## {figure}")
        sections.append("```")
        sections.append(text)
        sections.append("```")
        sections.append("")
    if len(sections) <= 2:
        sections.append("(no results recorded yet — run "
                        "`pytest benchmarks/ --benchmark-only`)")
    return "\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: ``python -m repro.bench.summary [results_dir] [output]``."""
    import sys

    args = list(sys.argv[1:] if argv is None else argv)
    results_dir = args[0] if args else "benchmarks/results"
    report = build_report(results_dir)
    if len(args) > 1:
        pathlib.Path(args[1]).write_text(report + "\n")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
