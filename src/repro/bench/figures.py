"""ASCII line charts for benchmark series.

The paper's figures are log-scale line plots; this module renders the
same series as terminal charts so the shape — who wins, where the gaps
widen — is visible directly in benchmark output and EXPERIMENTS.md
without a plotting stack.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Sequence

_MARKERS = "ox+*#@%&"


def _log_positions(
    values: Sequence[float], height: int, low: float, high: float
) -> List[int]:
    """Row index per value on a shared log scale (0 = bottom)."""
    log_low = math.log10(low)
    span = max(math.log10(high) - log_low, 1e-9)
    rows = []
    for value in values:
        if value <= 0 or not math.isfinite(value):
            rows.append(0)
            continue
        fraction = (math.log10(value) - log_low) / span
        fraction = min(max(fraction, 0.0), 1.0)
        rows.append(int(round(fraction * (height - 1))))
    return rows


def ascii_chart(
    title: str,
    x_labels: Sequence[object],
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    column_width: int = 12,
) -> str:
    """Render named series over shared x positions, log-scaled y.

    >>> print(ascii_chart("t", [1, 2], {"a": [1.0, 100.0]}))  # doctest: +SKIP
    """
    names = list(series)
    all_values = [v for values in series.values() for v in values]
    finite = [v for v in all_values if v > 0 and math.isfinite(v)]
    if not finite:
        return f"{title}\n(no positive data)"
    low = min(finite)
    high = max(finite)

    grid = [
        [" "] * (len(x_labels) * column_width) for _ in range(height)
    ]
    for index, name in enumerate(names):
        marker = _MARKERS[index % len(_MARKERS)]
        rows = _log_positions(series[name], height, low, high)
        for x_index, row in enumerate(rows):
            column = x_index * column_width + column_width // 2
            grid[height - 1 - row][column] = marker

    lines = [title]
    lines.append(f"{high:10.3g} +" + "-" * (len(x_labels) * column_width))
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{low:10.3g} +" + "-" * (len(x_labels) * column_width))
    axis = " " * 12
    for label in x_labels:
        axis += f"{str(label):^{column_width}s}"
    lines.append(axis)
    legend = "  ".join(
        f"{_MARKERS[index % len(_MARKERS)]}={name}"
        for index, name in enumerate(names)
    )
    lines.append(" " * 12 + legend + "   (log scale)")
    return "\n".join(lines)


def chart_from_results(
    title: str,
    rows: Mapping[object, Mapping[str, object]],
    metric: str,
    height: int = 12,
) -> str:
    """Chart a metric from a ``{sweep value -> {label -> result}}`` map."""
    x_labels = list(rows)
    labels = list(next(iter(rows.values())).keys())
    series = {
        label: [rows[x][label].metric(metric) for x in x_labels]
        for label in labels
    }
    return ascii_chart(title, x_labels, series, height=height)
