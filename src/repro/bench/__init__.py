"""Benchmark harness.

:mod:`repro.bench.harness` builds databases and runs query workloads
with per-engine metric aggregation; :mod:`repro.bench.reporting` formats
paper-style tables and series; :mod:`repro.bench.perf` is the
perf-regression subsystem behind ``python -m repro bench`` (seeded
kernel micro-benchmarks with oracle exactness checks, deterministic
engine counters, and the baseline gate).  The actual figure/table
reproductions live in ``benchmarks/`` at the repository root, one
pytest-benchmark module per figure.
"""

from repro.bench.harness import (
    EngineSpec,
    Harness,
    WorkloadResult,
    modeled_wall_time_s,
)
from repro.bench.perf import (
    Regression,
    compare,
    run_engine_suite,
    run_kernel_suite,
    run_suites,
)
from repro.bench.reporting import format_series_table, format_speedups

__all__ = [
    "Harness",
    "EngineSpec",
    "WorkloadResult",
    "modeled_wall_time_s",
    "format_series_table",
    "format_speedups",
    "Regression",
    "compare",
    "run_engine_suite",
    "run_kernel_suite",
    "run_suites",
]
