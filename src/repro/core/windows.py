"""Generalized windowing and matching subsequence equivalence classes.

In the DualMatch scheme [17] data sequences are cut into **disjoint**
windows of size ``omega`` and the query envelope into **sliding**
windows; Definition 4 partitions the sliding windows into ``omega``
equivalence classes (MSEQs): windows whose offsets are congruent modulo
``omega`` always align with the same disjoint data windows, hence match
the same candidate subsequences (Lemma 3).

Following GeneralMatch [16], the construction is generalized by a
**data stride** ``J`` dividing ``omega``: data windows start at
multiples of ``J`` (overlapping when ``J < omega``), and only the query
windows at offsets congruent to ``r (mod omega)`` with ``r < J`` are
used — ``J`` equivalence classes of *disjoint* query windows.  A
candidate at start ``s`` belongs to exactly the class
``r = (-s) mod J``: its first covered grid window sits at
``p = ceil(s / J) * J`` with query offset ``p - s = r``, and because
``J | omega`` every further class window lands on the grid too.
``J = omega`` is DualMatch; ``J = 1`` indexes every sliding data window
(the FRM end of the spectrum).  All the paper's bounds carry over
unchanged: class windows stay pairwise disjoint, so the MSEQ-distance
derivation (Lemma 4) applies verbatim.

All offsets are 0-based.  The paper's 1-based ``MSEQ_{i,j}`` with
``i in [1, omega]``, ``j in [1, |MSEQ_i|]`` maps to ``mseq_class = i - 1``
and ``mseq_position = j - 1`` here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.envelope import Envelope, query_envelope
from repro.core.normalize import znormalize
from repro.core.paa import paa, segment_length
from repro.exceptions import QueryError, QueryTooShortError


def num_disjoint_windows(length: int, omega: int) -> int:
    """Number of complete disjoint windows in a sequence of ``length``."""
    return length // omega


def num_sliding_windows(length: int, omega: int) -> int:
    """Number of sliding windows of size ``omega`` in a sequence."""
    return max(0, length - omega + 1)


def candidate_start(
    data_window_index: int, sliding_offset: int, data_stride: int
) -> int:
    """Start offset of the candidate implied by one matching window pair.

    If sliding query window at offset ``j`` (0-based) aligns with the
    data window ``m`` (0-based, starting at ``m * data_stride``), the
    candidate subsequence starts at ``m * data_stride - j`` — the proof
    of Lemma 3 in 0-based form (``data_stride == omega`` for DualMatch).
    May be negative or run past the sequence end; callers validate with
    :func:`candidate_in_bounds`.
    """
    return data_window_index * data_stride - sliding_offset


def candidate_in_bounds(
    start: int, query_length: int, sequence_length: int
) -> bool:
    """Whether a candidate ``[start, start + Len(Q))`` fits the sequence."""
    return start >= 0 and start + query_length <= sequence_length


@dataclass(frozen=True)
class QueryWindow:
    """One sliding window of the query envelope, PAA-transformed.

    Attributes
    ----------
    sliding_offset:
        0-based offset of the window within the query.
    mseq_class:
        Which equivalence class the window belongs to
        (``sliding_offset % omega``).
    mseq_position:
        0-based position of the window within its class
        (``sliding_offset // omega``).
    paa_lower, paa_upper:
        ``P(E(q))`` — the PAA of the envelope slice for this window.
    """

    sliding_offset: int
    mseq_class: int
    mseq_position: int
    paa_lower: np.ndarray = field(repr=False)
    paa_upper: np.ndarray = field(repr=False)


@dataclass(frozen=True)
class QueryWindowSet:
    """The used query windows of a query, grouped into MSEQs.

    Build with :meth:`from_query`.  ``classes[r]`` lists the windows of
    class ``r`` in position order; ``windows`` lists all *used* windows
    in offset order (with the DualMatch stride ``J == omega`` that is
    every sliding window).
    """

    query: np.ndarray = field(repr=False)
    envelope: Envelope = field(repr=False)
    omega: int
    features: int
    rho: int
    p: float
    data_stride: int
    windows: List[QueryWindow] = field(repr=False)
    classes: List[List[QueryWindow]] = field(repr=False)
    #: Whether :attr:`query` (and hence the envelope and every PAA
    #: window) is the z-normalized form of the caller's query.
    normalized: bool = False

    @property
    def length(self) -> int:
        """``Len(Q)``."""
        return int(self.query.size)

    @property
    def seg_len(self) -> int:
        """Raw values per PAA dimension (``omega / features``)."""
        return segment_length(self.omega, self.features)

    @property
    def num_classes(self) -> int:
        """Number of equivalence classes (the data stride ``J``)."""
        return len(self.classes)

    @classmethod
    def from_query(
        cls,
        query: Sequence[float],
        omega: int,
        features: int,
        rho: int,
        p: float = 2.0,
        envelope: Optional[Envelope] = None,
        data_stride: Optional[int] = None,
        normalize: bool = False,
    ) -> "QueryWindowSet":
        """Construct envelope, query windows, and the MSEQ partition.

        ``data_stride`` (``J``) defaults to ``omega`` (DualMatch) and
        must divide ``omega``.  With ``normalize`` the query is first
        z-normalized (whole-query mean/std, the UCR convention), so the
        envelope and every PAA window live in normalized space; pass no
        precomputed ``envelope`` in that case.

        Raises
        ------
        QueryTooShortError
            If ``Len(Q) < omega + data_stride - 1``.  Below that, a
            candidate can straddle grid-window boundaries without fully
            containing any grid window, so matching could miss it
            (equivalently, Definition 2's ``r`` would be zero).
        """
        stride = omega if data_stride is None else data_stride
        if stride < 1 or omega % stride != 0:
            raise QueryTooShortError(
                f"data stride {stride} must divide omega {omega}"
            )
        array = np.ascontiguousarray(query, dtype=np.float64)
        if array.size < omega + stride - 1:
            raise QueryTooShortError(
                f"query length {array.size} < omega + stride - 1 = "
                f"{omega + stride - 1}; no-false-dismissal guarantee "
                f"would break"
            )
        segment_length(omega, features)  # validates omega/features pairing
        if normalize:
            if envelope is not None:
                raise QueryError(
                    "normalize=True rebuilds the envelope in normalized "
                    "space; do not pass a precomputed envelope"
                )
            array = np.ascontiguousarray(znormalize(array))
        if envelope is None:
            envelope = query_envelope(array, rho)
        windows: List[QueryWindow] = []
        classes: List[List[QueryWindow]] = [[] for _ in range(stride)]
        for offset in range(array.size - omega + 1):
            residue = offset % omega
            if residue >= stride:
                continue  # unused under this stride
            window_env = envelope.slice(offset, omega)
            window = QueryWindow(
                sliding_offset=offset,
                mseq_class=residue,
                mseq_position=offset // omega,
                paa_lower=paa(window_env.lower, features),
                paa_upper=paa(window_env.upper, features),
            )
            windows.append(window)
            classes[residue].append(window)
        return cls(
            query=array,
            envelope=envelope,
            omega=omega,
            features=features,
            rho=rho,
            p=p,
            data_stride=stride,
            windows=windows,
            classes=classes,
            normalized=normalize,
        )

    def class_of(self, sliding_offset: int) -> List[QueryWindow]:
        """The equivalence class containing the window at this offset."""
        residue = sliding_offset % self.omega
        if residue >= self.data_stride:
            raise QueryError(
                f"offset {sliding_offset} is not a used window under "
                f"stride {self.data_stride}"
            )
        return self.classes[residue]

    def window_at(self, sliding_offset: int) -> QueryWindow:
        """The used window at a given sliding offset.

        With the DualMatch stride every offset is used; with a smaller
        stride only offsets whose residue modulo ``omega`` is below the
        stride exist (:class:`~repro.exceptions.QueryError` otherwise).
        """
        cls = self.class_of(sliding_offset)
        window = cls[sliding_offset // self.omega]
        if window.sliding_offset != sliding_offset:
            raise QueryError(
                f"no window at offset {sliding_offset}"
            )
        return window
