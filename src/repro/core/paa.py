"""Piecewise aggregate approximation (PAA).

PAA reduces a length-``N`` sequence to ``f`` dimensions by averaging
``N / f`` equal segments.  In this system every *window* (length
``omega``) is PAA-transformed to an ``f``-dimensional point before being
stored in the R*-tree, and query-window envelopes are PAA-transformed
half by half (the paper's ``P(E(q))``).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.core.envelope import Envelope
from repro.exceptions import ConfigurationError, QueryError


def segment_length(window_size: int, features: int) -> int:
    """``N / f`` — the values averaged per PAA dimension.

    The paper's windows always divide evenly; we enforce it so that
    lower-bound scaling factors stay exact.
    """
    if features < 1:
        raise ConfigurationError(f"features must be >= 1, got {features}")
    if window_size < features or window_size % features != 0:
        raise ConfigurationError(
            f"window size {window_size} must be a positive multiple of the "
            f"feature count {features}"
        )
    return window_size // features


def paa(values: Sequence[float], features: int) -> np.ndarray:
    """PAA of a sequence: ``f`` segment means.

    >>> paa([1.0, 3.0, 5.0, 7.0], 2).tolist()
    [2.0, 6.0]
    """
    array = np.ascontiguousarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise QueryError(f"PAA input must be 1-D, got shape {array.shape}")
    seg = segment_length(array.size, features)
    return array.reshape(features, seg).mean(axis=1)


def paa_batch(rows: Sequence[Sequence[float]], features: int) -> np.ndarray:
    """PAA of a batch of equal-length sequences: shape ``(B, f)``.

    Row ``b`` is bit-for-bit equal to ``paa(rows[b], features)`` — both
    reduce the same contiguous ``seg`` values with the same pairwise
    float64 summation.
    """
    array = np.ascontiguousarray(rows, dtype=np.float64)
    if array.ndim != 2:
        raise QueryError(
            f"PAA batch input must be 2-D, got shape {array.shape}"
        )
    seg = segment_length(array.shape[1], features)
    return array.reshape(array.shape[0], features, seg).mean(axis=2)


def paa_envelope(envelope: Envelope, features: int) -> Tuple[np.ndarray, np.ndarray]:
    """PAA of a query envelope: ``(paa_lower, paa_upper)``.

    Applies :func:`paa` to each half, as in the paper's definition of
    ``P(E(Q))``.
    """
    return paa(envelope.lower, features), paa(envelope.upper, features)
