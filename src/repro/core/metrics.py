"""Performance counters matching the paper's Section 6 metrics.

The paper reports three metrics per query — number of candidates, number
of page accesses, wall clock time — plus, for PSM, bloom filter calls.
:class:`QueryStats` carries those and some finer-grained counters that
the ablation benches use.  :class:`StatsRecorder` snapshots the shared
pager/buffer counters around one query so engines report *deltas*.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.concurrency import single_query
from repro.exceptions import ConfigurationError, UsageError
from repro.storage.buffer import BufferPool
from repro.storage.pager import Pager


@single_query
@dataclass
class QueryStats:
    """Counters for one executed query.

    Concurrency contract: ``@single_query`` — owned by exactly one
    in-flight query; never share an instance between threads.  Cross-
    query aggregation goes through :class:`repro.obs.metrics` instead.
    """

    #: Candidate subsequences whose full values were retrieved (the
    #: paper's "number of candidates").
    candidates: int = 0
    #: Physical page reads during the query (the paper's "page accesses").
    page_accesses: int = 0
    #: Physical reads that targeted the page right after the previous
    #: one (cheap on spinning disks; produced by deferred retrieval and
    #: sequential scans).
    sequential_page_accesses: int = 0
    #: Physical reads that required a seek.
    random_page_accesses: int = 0
    #: Buffer requests (hits + misses).
    logical_reads: int = 0
    #: Wall clock seconds.
    wall_time_s: float = 0.0
    #: DTW computations actually run (candidates minus LB_Keogh prunes).
    dtw_computations: int = 0
    #: LB_Keogh evaluations.
    lb_keogh_computations: int = 0
    #: Priority-queue pops (HLMJ's global queue or RU's per-window queues).
    heap_pops: int = 0
    #: R*-tree node expansions.
    node_expansions: int = 0
    #: Bloom filter invocations (PSM only).
    bloom_calls: int = 0
    #: Deferred-retrieval buffer flushes ("(D)" variants only).
    deferred_flushes: int = 0
    #: Candidates pruned by index-level lower bounds before retrieval.
    pruned_by_lower_bound: int = 0
    #: Candidates pruned by LB_Keogh after retrieval, before DTW.
    pruned_by_lb_keogh: int = 0
    #: Duplicate candidates suppressed by the seen-set.
    duplicates_suppressed: int = 0
    #: Window-group distance evaluations (HLMJ's optional tighter bound).
    window_group_evaluations: int = 0
    #: 1 when an operation budget cut the query short (PSM's graceful
    #: stop — results are then a best-effort lower bound, not exact).
    budget_exhausted: int = 0
    #: Transient read failures recovered by the buffer pool's retry
    #: policy during this query.
    retries: int = 0
    #: Candidates or index subtrees skipped because of storage faults
    #: under ``on_fault="degrade"`` (0 on a healthy run).
    faults_skipped: int = 0
    #: Cooperative budget/deadline/cancellation checkpoints executed
    #: (see :class:`repro.control.ExecutionControl`).
    checkpoints: int = 0
    #: 1 when the query was cut short by a budget, deadline, or
    #: cancellation and returned a partial result.
    interrupted: int = 0

    def as_dict(self) -> Dict[str, float]:
        """Flat dict for reporting layers."""
        return {
            "candidates": self.candidates,
            "page_accesses": self.page_accesses,
            "sequential_page_accesses": self.sequential_page_accesses,
            "random_page_accesses": self.random_page_accesses,
            "logical_reads": self.logical_reads,
            "wall_time_s": self.wall_time_s,
            "dtw_computations": self.dtw_computations,
            "lb_keogh_computations": self.lb_keogh_computations,
            "heap_pops": self.heap_pops,
            "node_expansions": self.node_expansions,
            "bloom_calls": self.bloom_calls,
            "deferred_flushes": self.deferred_flushes,
            "pruned_by_lower_bound": self.pruned_by_lower_bound,
            "pruned_by_lb_keogh": self.pruned_by_lb_keogh,
            "duplicates_suppressed": self.duplicates_suppressed,
            "window_group_evaluations": self.window_group_evaluations,
            "budget_exhausted": self.budget_exhausted,
            "retries": self.retries,
            "faults_skipped": self.faults_skipped,
            "checkpoints": self.checkpoints,
            "interrupted": self.interrupted,
        }

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another query's counters into this one (for means)."""
        for key, value in other.as_dict().items():
            setattr(self, key, getattr(self, key) + value)

    def scaled(self, divisor: float) -> "QueryStats":
        """Element-wise division — used to average over a query set."""
        if divisor <= 0:
            raise ConfigurationError(
                f"divisor must be positive, got {divisor}"
            )
        averaged = QueryStats()
        for key, value in self.as_dict().items():
            setattr(averaged, key, value / divisor)
        return averaged


@single_query
class StatsRecorder:
    """Context helper that turns shared storage counters into deltas.

    Usage::

        recorder = StatsRecorder(pager, buffer)
        recorder.start()
        ...  # run the query, incrementing recorder.stats counters
        stats = recorder.finish()
    """

    def __init__(self, pager: Pager, buffer: BufferPool) -> None:
        self._pager = pager
        self._buffer = buffer
        self.stats = QueryStats()
        self._reads_at_start = 0
        self._sequential_at_start = 0
        self._random_at_start = 0
        self._logical_at_start = 0
        self._retries_at_start = 0
        self._started_at: Optional[float] = None

    def start(self) -> "StatsRecorder":
        self.stats = QueryStats()
        self._reads_at_start = self._pager.stats.physical_reads
        self._sequential_at_start = self._pager.stats.sequential_reads
        self._random_at_start = self._pager.stats.random_reads
        self._logical_at_start = self._buffer.stats.logical_reads
        self._retries_at_start = self._buffer.stats.retries
        self._started_at = time.perf_counter()
        return self

    def finish(self) -> QueryStats:
        if self._started_at is None:
            raise UsageError("StatsRecorder.finish() before start()")
        self.stats.wall_time_s = time.perf_counter() - self._started_at
        self.stats.page_accesses = (
            self._pager.stats.physical_reads - self._reads_at_start
        )
        self.stats.sequential_page_accesses = (
            self._pager.stats.sequential_reads - self._sequential_at_start
        )
        self.stats.random_page_accesses = (
            self._pager.stats.random_reads - self._random_at_start
        )
        self.stats.logical_reads = (
            self._buffer.stats.logical_reads - self._logical_at_start
        )
        self.stats.retries = (
            self._buffer.stats.retries - self._retries_at_start
        )
        self._started_at = None
        return self.stats
