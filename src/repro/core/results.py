"""Match records and the top-k collector shared by all engines.

Distances are tracked internally in p-th-power space (consistent with the
rest of the library); :class:`Match` exposes both forms.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.exceptions import QueryError


@dataclass(frozen=True, order=True)
class Match:
    """One ranked result: a data subsequence and its DTW distance.

    Ordering is by ``(distance, sid, start)`` so result lists are stable
    under ties.
    """

    distance: float
    sid: int
    start: int
    length: int

    @property
    def end(self) -> int:
        """Exclusive end offset of the matched subsequence."""
        return self.start + self.length

    def key(self) -> Tuple[int, int]:
        """Identity of the underlying subsequence."""
        return (self.sid, self.start)


class TopKCollector:
    """Maintains the best ``k`` matches seen so far and ``delta_cur``.

    ``delta_cur`` — the paper's name for the DTW distance of the current
    k-th best subsequence — is the pruning threshold every engine compares
    lower bounds against.  It is ``inf`` until ``k`` matches have been
    collected.

    The collector works in *p-th-power space*: :meth:`offer_pow` takes and
    :attr:`threshold_pow` returns powered distances, avoiding root
    round-trips inside engine hot loops.
    """

    def __init__(self, k: int, p: float = 2.0) -> None:
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        self._k = k
        self._p = p
        # Max-heap via negated powered distance; ties broken on (sid,
        # start) so behaviour is deterministic.
        self._heap: List[Tuple[float, int, int, int]] = []

    @property
    def k(self) -> int:
        return self._k

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        return len(self._heap) >= self._k

    @property
    def threshold_pow(self) -> float:
        """``delta_cur ** p`` — infinite until ``k`` matches exist."""
        if len(self._heap) < self._k:
            return math.inf
        return -self._heap[0][0]

    @property
    def threshold(self) -> float:
        """``delta_cur`` in distance space."""
        pow_value = self.threshold_pow
        if math.isinf(pow_value):
            return math.inf
        return pow_value ** (1.0 / self._p)

    def offer_pow(self, distance_pow: float, sid: int, start: int) -> bool:
        """Offer a match with a powered distance; returns acceptance.

        A match is accepted when the collector is not yet full or it
        precedes the current k-th best under the **total order**
        ``(distance, sid, start)``.  Resolving equal-distance ties by
        ``(sid, start)`` — rather than in favour of the incumbent —
        makes the collected set a pure function of the offered
        candidates, independent of arrival order, so per-shard
        collectors merged by :mod:`repro.shard` agree byte-for-byte
        with a single-process run even when duplicated sequences
        produce exact distance ties.  Pruning semantics are unchanged:
        :attr:`threshold_pow` never moves on an equal-distance
        replacement, so ``<=`` prunes match the paper's algorithms.
        """
        if math.isinf(distance_pow):
            return False
        entry = (-distance_pow, -sid, -start, 0)
        if len(self._heap) < self._k:
            heapq.heappush(self._heap, entry)
            return True
        # Min-heap of negated keys: the root is the (distance, sid,
        # start)-maximal — i.e. worst — retained match.  Replace it iff
        # the newcomer strictly precedes it in the total order.
        if entry <= self._heap[0]:
            return False
        heapq.heapreplace(self._heap, entry)
        return True

    def matches(self, length: int) -> List[Match]:
        """The collected matches, best first, with rooted distances."""
        ordered = sorted(
            (-neg_pow, -neg_sid, -neg_start)
            for neg_pow, neg_sid, neg_start, _ in self._heap
        )
        return [
            Match(
                distance=pow_value ** (1.0 / self._p),
                sid=sid,
                start=start,
                length=length,
            )
            for pow_value, sid, start in ordered
        ]
