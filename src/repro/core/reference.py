"""Gold-standard scalar oracles used by the test and bench suites.

Two kinds of reference live here:

* **Scalar kernel oracles** (``reference_*``): the original, deliberately
  unoptimised scalar-loop implementations of banded DTW, the envelope,
  PAA, and every lower bound.  The vectorized kernels in
  :mod:`repro.core.distance` and :mod:`repro.core.lower_bounds` must
  reproduce these bit for bit (DTW, envelope, PAA) or to within 1e-9
  (reduction-order-sensitive sums); ``tests/test_kernel_conformance.py``
  enforces it with randomized differential testing, and
  ``python -m repro bench --suite kernels`` re-checks exactness on every
  benchmark input before timing anything.
* **Brute-force engines** (:func:`brute_force_topk`): exhaustive banded
  DTW at every offset with no index, no lower bounds, and no I/O
  accounting.  Every engine must return the same distance multiset.

Nothing here may import the vectorized kernels — an oracle that shares
code with the thing it validates cannot catch its bugs.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.results import Match
from repro.exceptions import QueryError
from repro.storage.sequences import SequenceStore

_INF = math.inf


def _as_float_list(values: Sequence[float]) -> list:
    """Plain Python-float view, upcasting any input dtype to float64."""
    if isinstance(values, np.ndarray):
        return [float(v) for v in values.tolist()]
    return [float(v) for v in values]


def reference_dtw_pow(
    s: Sequence[float],
    q: Sequence[float],
    rho: int,
    p: float = 2.0,
    threshold_pow: float = _INF,
) -> float:
    """``DTW_rho(S, Q) ** p`` — the original row-by-row scalar DP.

    Semantics mirror :func:`repro.core.distance.dtw_pow` (band
    constraint, row-level early abandoning, float64 accumulation).
    """
    if rho < 0:
        raise QueryError(f"warping width rho must be >= 0, got {rho}")
    n = len(q)
    m = len(s)
    if n == 0 and m == 0:
        return 0.0
    if n == 0 or m == 0:
        return _INF
    if abs(n - m) > rho:
        return _INF

    qs = _as_float_list(q)
    ss = _as_float_list(s)
    # Exact dispatch on the user-supplied norm order, not a computed float.
    squared = p == 2.0  # repro: ignore[RS003]

    # prev[j] holds row i-1 of the DP matrix; positions outside the band
    # stay infinite.  Row i covers data columns [i - rho, i + rho].
    prev = [_INF] * m
    for i in range(n):
        lo = i - rho
        if lo < 0:
            lo = 0
        hi = i + rho
        if hi >= m:
            hi = m - 1
        cur = [_INF] * m
        qi = qs[i]
        row_min = _INF
        left = _INF  # cur[j - 1], the within-row dependency
        for j in range(lo, hi + 1):
            gap = ss[j] - qi
            if gap < 0.0:
                gap = -gap
            cost = gap * gap if squared else gap**p
            if i == 0 and j == 0:
                best = 0.0
            else:
                best = prev[j]  # vertical move
                diag = prev[j - 1] if j > 0 else _INF
                if diag < best:
                    best = diag
                if left < best:
                    best = left
            value = cost + best
            cur[j] = value
            left = value
            if value < row_min:
                row_min = value
        if row_min > threshold_pow:
            return _INF
        prev = cur
    return prev[m - 1]


def reference_envelope(
    q: Sequence[float], rho: int
) -> Tuple[np.ndarray, np.ndarray]:
    """``E(Q)`` as (lower, upper) — the Definition 1 double loop."""
    if rho < 0:
        raise QueryError(f"warping width rho must be >= 0, got {rho}")
    array = np.asarray(q, dtype=np.float64)
    n = int(array.size)
    lower = np.empty(n, dtype=np.float64)
    upper = np.empty(n, dtype=np.float64)
    values = [float(v) for v in array.tolist()]
    for i in range(n):
        lo = max(0, i - rho)
        hi = min(n, i + rho + 1)
        window = values[lo:hi]
        lower[i] = min(window)
        upper[i] = max(window)
    return lower, upper


def reference_paa(values: Sequence[float], features: int) -> np.ndarray:
    """PAA segment means via an explicit per-segment loop."""
    array = np.asarray(values, dtype=np.float64)
    if features < 1 or array.size % features != 0:
        raise QueryError(
            f"length {array.size} must be a positive multiple of the "
            f"feature count {features}"
        )
    seg = int(array.size) // features
    out = np.empty(features, dtype=np.float64)
    for dim in range(features):
        out[dim] = float(np.mean(array[dim * seg : (dim + 1) * seg]))
    return out


def reference_rolling_stats(
    values: Sequence[float], window: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-window ``(mu, sigma_eff)`` via naive two-pass scalar loops.

    The oracle for :func:`repro.core.normalize.rolling_stats`: each
    window is summed twice (mean, then centred squares) in plain Python
    floats, with the same constant-window convention — a deviation at
    or below ``1e-10`` is replaced by ``1.0``.
    """
    if window < 1:
        raise QueryError(f"window must be >= 1, got {window}")
    vals = _as_float_list(values)
    count = len(vals) - window + 1
    mus: List[float] = []
    sigmas: List[float] = []
    for start in range(max(0, count)):
        chunk = vals[start : start + window]
        mean = sum(chunk) / window
        var = sum((v - mean) * (v - mean) for v in chunk) / window
        sigma = math.sqrt(var)
        mus.append(mean)
        sigmas.append(sigma if sigma > 1e-10 else 1.0)
    return (
        np.asarray(mus, dtype=np.float64),
        np.asarray(sigmas, dtype=np.float64),
    )


def reference_znormalize(values: Sequence[float]) -> np.ndarray:
    """Whole-sequence z-normalization via the scalar stats oracle."""
    vals = _as_float_list(values)
    if not vals:
        raise QueryError("cannot z-normalize an empty sequence")
    mus, sigmas = reference_rolling_stats(vals, len(vals))
    mean = float(mus[0])
    sigma = float(sigmas[0])
    return np.asarray([(v - mean) / sigma for v in vals], dtype=np.float64)


def _reference_gap(lower: float, upper: float, value: float) -> float:
    """Scalar distance from ``value`` to the band ``[lower, upper]``."""
    if value > upper:
        return value - upper
    if value < lower:
        return lower - value
    return 0.0


def reference_lb_keogh_pow(
    lower: Sequence[float],
    upper: Sequence[float],
    values: Sequence[float],
    p: float = 2.0,
) -> float:
    """``LB_Keogh(E(Q), S) ** p`` via a scalar accumulation loop."""
    los = _as_float_list(lower)
    ups = _as_float_list(upper)
    vals = _as_float_list(values)
    if not (len(los) == len(ups) == len(vals)):
        raise QueryError(
            f"LB_Keogh needs equal lengths, got {len(los)}, {len(ups)}, "
            f"{len(vals)}"
        )
    total = 0.0
    for lo, up, value in zip(los, ups, vals):
        gap = _reference_gap(lo, up, value)
        total += gap * gap if p == 2.0 else gap**p  # repro: ignore[RS003]
    return total


def reference_lb_paa_pow(
    paa_lower: Sequence[float],
    paa_upper: Sequence[float],
    paa_values: Sequence[float],
    seg_len: int,
    p: float = 2.0,
) -> float:
    """``LB_PAA(P(E(Q)), P(S)) ** p`` via a scalar loop."""
    if seg_len < 1:
        raise QueryError(f"seg_len must be >= 1, got {seg_len}")
    return seg_len * reference_lb_keogh_pow(
        paa_lower, paa_upper, paa_values, p
    )


def reference_mindist_pow(
    paa_lower: Sequence[float],
    paa_upper: Sequence[float],
    rect_low: Sequence[float],
    rect_high: Sequence[float],
    seg_len: int,
    p: float = 2.0,
) -> float:
    """``MINDIST(P(E(q)), MBR) ** p`` via a scalar loop."""
    if seg_len < 1:
        raise QueryError(f"seg_len must be >= 1, got {seg_len}")
    total = 0.0
    for lo, up, rect_lo, rect_hi in zip(
        _as_float_list(paa_lower),
        _as_float_list(paa_upper),
        _as_float_list(rect_low),
        _as_float_list(rect_high),
    ):
        gap = max(rect_lo - up, lo - rect_hi, 0.0)
        total += gap * gap if p == 2.0 else gap**p  # repro: ignore[RS003]
    return seg_len * total


def reference_maxdist_pow(
    paa_lower: Sequence[float],
    paa_upper: Sequence[float],
    rect_low: Sequence[float],
    rect_high: Sequence[float],
    seg_len: int,
    p: float = 2.0,
) -> float:
    """``MAXDIST(P(E(q)), MBR) ** p`` via a scalar loop."""
    if seg_len < 1:
        raise QueryError(f"seg_len must be >= 1, got {seg_len}")
    total = 0.0
    for lo, up, rect_lo, rect_hi in zip(
        _as_float_list(paa_lower),
        _as_float_list(paa_upper),
        _as_float_list(rect_low),
        _as_float_list(rect_high),
    ):
        gap = max(
            _reference_gap(lo, up, rect_lo), _reference_gap(lo, up, rect_hi)
        )
        total += gap * gap if p == 2.0 else gap**p  # repro: ignore[RS003]
    return seg_len * total


def brute_force_topk(
    store: SequenceStore,
    query: Sequence[float],
    k: int,
    rho: int,
    p: float = 2.0,
) -> List[Match]:
    """Exact top-k subsequences by exhaustive banded DTW.

    Deliberately unoptimised (no LB_Keogh, no early abandon, scalar DP)
    so that it cannot share a bug with the engines it validates.
    """
    array = np.ascontiguousarray(query, dtype=np.float64)
    length = array.size
    scored: List[tuple] = []
    for sid, values in store.iter_sequences():
        for start in range(values.size - length + 1):
            distance_pow = reference_dtw_pow(
                values[start : start + length], array, rho, p=p
            )
            scored.append((distance_pow, sid, start))
    best = heapq.nsmallest(k, scored)
    return [
        Match(
            distance=distance_pow ** (1.0 / p),
            sid=sid,
            start=start,
            length=length,
        )
        for distance_pow, sid, start in best
    ]
