"""Gold-standard brute force used by the test suite.

Computes banded DTW at every offset with no index, no lower bounds, and
no I/O accounting.  Every engine must return the same distance multiset
as this function (up to floating-point tolerance); the equivalence tests
in ``tests/`` enforce it, including via hypothesis-generated inputs.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence

import numpy as np

from repro.core.distance import dtw_pow
from repro.core.results import Match
from repro.storage.sequences import SequenceStore


def brute_force_topk(
    store: SequenceStore,
    query: Sequence[float],
    k: int,
    rho: int,
    p: float = 2.0,
) -> List[Match]:
    """Exact top-k subsequences by exhaustive banded DTW.

    Deliberately unoptimised (no LB_Keogh, no early abandon) so that it
    cannot share a bug with the engines it validates.
    """
    array = np.ascontiguousarray(query, dtype=np.float64)
    length = array.size
    scored: List[tuple] = []
    for sid, values in store.iter_sequences():
        for start in range(values.size - length + 1):
            distance_pow = dtw_pow(
                values[start : start + length], array, rho, p=p
            )
            scored.append((distance_pow, sid, start))
    best = heapq.nsmallest(k, scored)
    return [
        Match(
            distance=distance_pow ** (1.0 / p),
            sid=sid,
            start=start,
            length=length,
        )
        for distance_pow, sid, start in best
    ]
