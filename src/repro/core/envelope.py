"""Query envelopes (Definition 1 of the paper).

The envelope of a query ``Q`` under warping width ``rho`` is the pair of
sequences ``L`` and ``U`` where ``L[i]`` / ``U[i]`` are the minimum /
maximum of ``Q[i-rho : i+rho]`` (clamped at the ends).  Envelopes are what
make LB_Keogh/LB_PAA valid lower bounds for banded DTW (Lemma 1).

The sliding min/max is computed in O(n) with monotonic deques.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import QueryError


@dataclass(frozen=True)
class Envelope:
    """The envelope ``E(Q)`` — read-only lower and upper bound sequences."""

    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self) -> None:
        if self.lower.shape != self.upper.shape:
            raise QueryError(
                f"envelope halves differ in shape: {self.lower.shape} vs "
                f"{self.upper.shape}"
            )

    def __len__(self) -> int:
        return int(self.lower.size)

    def slice(self, start: int, length: int) -> "Envelope":
        """The envelope restricted to ``[start, start + length)``.

        Sliding query windows use slices of the *full-query* envelope —
        window boundary elements keep seeing neighbours outside the
        window, exactly as the paper's ``E(q_i)`` notation implies.
        """
        if start < 0 or start + length > len(self):
            raise QueryError(
                f"envelope slice [{start}, {start + length}) out of bounds "
                f"for length {len(self)}"
            )
        return Envelope(
            lower=self.lower[start : start + length],
            upper=self.upper[start : start + length],
        )


def _sliding_extreme(values: np.ndarray, rho: int, take_max: bool) -> np.ndarray:
    """O(n) sliding max (or min) over the window ``[i - rho, i + rho]``."""
    n = values.size
    out = np.empty(n, dtype=np.float64)
    window: deque = deque()  # indices; values monotone along the deque
    data = values.tolist()

    def dominated(candidate: float, incumbent: float) -> bool:
        return candidate >= incumbent if take_max else candidate <= incumbent

    # The window for output i is [i - rho, i + rho]; process arrivals in
    # order, emitting output i once index i + rho has arrived.
    for arriving in range(n + rho):
        if arriving < n:
            value = data[arriving]
            while window and dominated(value, data[window[-1]]):
                window.pop()
            window.append(arriving)
        emit = arriving - rho
        if 0 <= emit < n:
            while window[0] < emit - rho:
                window.popleft()
            out[emit] = data[window[0]]
    return out


def query_envelope(q: Sequence[float], rho: int) -> Envelope:
    """Build ``E(Q)`` for warping width ``rho``.

    >>> env = query_envelope([1.0, 5.0, 2.0], rho=1)
    >>> env.upper.tolist()
    [5.0, 5.0, 5.0]
    >>> env.lower.tolist()
    [1.0, 1.0, 2.0]
    """
    if rho < 0:
        raise QueryError(f"warping width rho must be >= 0, got {rho}")
    array = np.ascontiguousarray(q, dtype=np.float64)
    if array.ndim != 1 or array.size == 0:
        raise QueryError(
            f"query must be a non-empty 1-D sequence, got shape {array.shape}"
        )
    if rho == 0:
        lower = array.copy()
        upper = array.copy()
    else:
        lower = _sliding_extreme(array, rho, take_max=False)
        upper = _sliding_extreme(array, rho, take_max=True)
    lower.setflags(write=False)
    upper.setflags(write=False)
    return Envelope(lower=lower, upper=upper)


def envelope_batch(
    rows: Sequence[Sequence[float]], rho: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Envelopes for a batch of equal-length sequences at once.

    Returns ``(lower, upper)`` arrays of shape ``(B, n)``; row ``b`` is
    exactly ``query_envelope(rows[b], rho)`` (min/max are
    order-insensitive, so the vectorized sliding window is bit-exact
    against the deque-based single-sequence path).

    Implemented with a strided sliding-window view over ±inf-padded
    rows: O(n * min(2 rho + 1, n)) work but no Python-level loop, which
    beats the deque for batches even at moderate ``rho``.
    """
    if rho < 0:
        raise QueryError(f"warping width rho must be >= 0, got {rho}")
    array = np.ascontiguousarray(rows, dtype=np.float64)
    if array.ndim != 2 or array.shape[1] == 0:
        raise QueryError(
            f"batch must be 2-D with non-empty rows, got shape {array.shape}"
        )
    if rho == 0:
        return array.copy(), array.copy()
    # Window [i - rho, i + rho] clamps at the ends; padding with the
    # identity element of each extreme keeps the window width fixed.
    span = 2 * rho + 1
    pad = ((0, 0), (rho, rho))
    padded = np.pad(array, pad, constant_values=np.inf)
    lower = np.lib.stride_tricks.sliding_window_view(padded, span, axis=1).min(
        axis=2
    )
    padded = np.pad(array, pad, constant_values=-np.inf)
    upper = np.lib.stride_tricks.sliding_window_view(padded, span, axis=1).max(
        axis=2
    )
    return lower, upper


def envelope_bounds(envelope: Envelope) -> Tuple[float, float]:
    """Global (min, max) of an envelope — handy for plotting and tests."""
    return float(envelope.lower.min()), float(envelope.upper.max())
