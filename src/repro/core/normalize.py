"""Online z-normalization for amplitude/offset-invariant matching.

Raw DTW distinguishes two occurrences of the same *shape* at different
offsets or amplitudes — exactly what stock-pattern and query-by-humming
workloads must not do.  The classical remedy (UCR suite, KV-match) is
to z-normalize every candidate window to zero mean and unit variance
and match in normalized space.  Doing that naively costs two passes
over every candidate; this module provides the **online** (rolling
cumulative-sum) kernel that prices the per-window mean and standard
deviation of *every* sliding position in one pass over the sequence.

Three layers:

* :func:`rolling_stats` — the kernel: per-window ``(mu, sigma)`` for
  all starts of one sequence, O(n) via shifted cumulative sums.  The
  naive two-pass scalar oracle lives in
  :func:`repro.core.reference.reference_rolling_stats`;
  ``tests/test_property_normalize.py`` holds them to <= 1e-9 agreement.
* :func:`znormalize` — apply ``(x - mu) / sigma`` (computing
  whole-array stats through the same kernel when none are given, so
  query and candidate normalization share one arithmetic).
* :class:`NormalizationContext` / :class:`WindowNormalizer` — the
  engine-facing plane: per-sequence precomputed stats vectors, scalar
  and batched lookup keyed by ``(sid, start)``, the global
  ``(mu, sigma)`` ranges that make R*-tree MBR bounds sound under
  per-candidate normalization, and the per-query-window adapter the
  priority queues use to transform leaf PAA points.

Numerical contract
------------------
Every consumer of a candidate's stats — leaf lower bounds, LB_Keogh
verification, and the final DTW — reads the *same* precomputed vectors,
so there is no rolling-vs-direct drift inside one query: the lower
bound chain is evaluated and verified under identical ``(mu, sigma)``.
Windows with ``sigma <= SIGMA_FLOOR`` are treated as constant and
normalized with ``sigma = 1`` (the UCR-suite convention), which keeps
the transform defined and the bounds finite.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Protocol, Tuple

import numpy as np

from repro.exceptions import QueryError
from repro.storage.sequences import SequenceStore

#: Below this a window's standard deviation is considered zero and the
#: window is normalized as a constant (``sigma_eff = 1``).  Mirrored by
#: the scalar oracle in :mod:`repro.core.reference`.
SIGMA_FLOOR = 1e-10


class _WindowRecord(Protocol):
    """Structural type of an R*-tree leaf record (sid + window index)."""

    sid: int
    window_index: int


def rolling_stats(
    values: np.ndarray, window: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-window ``(mu, sigma_eff)`` for every start of one sequence.

    Returns two float64 arrays of length ``size - window + 1`` (empty
    when the sequence is shorter than the window).  ``sigma_eff`` is the
    population standard deviation, floored to ``1.0`` for windows whose
    deviation falls at or below :data:`SIGMA_FLOOR`.

    The kernel subtracts the sequence's global mean before building the
    cumulative sums (a standard conditioning shift): the variance
    cancellation ``E[x^2] - E[x]^2`` then works on values centred near
    zero, so constant or near-constant windows inside a large-magnitude
    sequence do not manufacture spurious deviation.  Accumulation is
    float64 regardless of the input dtype.
    """
    if window < 1:
        raise QueryError(f"window must be >= 1, got {window}")
    x = np.asarray(values, dtype=np.float64)
    if x.ndim != 1:
        raise QueryError(f"values must be 1-D, got shape {x.shape}")
    count = int(x.size) - window + 1
    if count <= 0:
        empty = np.empty(0, dtype=np.float64)
        return empty, empty.copy()
    shift = float(x.mean())
    centred = x - shift
    csum = np.concatenate(([0.0], np.cumsum(centred)))
    csum2 = np.concatenate(([0.0], np.cumsum(centred * centred)))
    mean_centred = (csum[window:] - csum[:count]) / window
    mean_sq = (csum2[window:] - csum2[:count]) / window
    var = mean_sq - mean_centred * mean_centred
    np.maximum(var, 0.0, out=var)
    sigma = np.sqrt(var)
    mu = shift + mean_centred
    sigma_eff = np.where(sigma > SIGMA_FLOOR, sigma, 1.0)
    return mu, sigma_eff


def znormalize(
    values: np.ndarray,
    mu: Optional[float] = None,
    sigma: Optional[float] = None,
) -> np.ndarray:
    """``(values - mu) / sigma`` in float64.

    With no stats given, the whole array's ``(mu, sigma_eff)`` are
    computed through :func:`rolling_stats` (window = full length), so a
    z-normalized query and a z-normalized candidate go through the same
    arithmetic.  Constant inputs normalize to all zeros.
    """
    x = np.asarray(values, dtype=np.float64)
    if mu is None or sigma is None:
        if x.size == 0:
            raise QueryError("cannot z-normalize an empty sequence")
        mus, sigmas = rolling_stats(x, int(x.size))
        mu = float(mus[0])
        sigma = float(sigmas[0])
    if not sigma > 0.0:
        raise QueryError(f"sigma must be positive, got {sigma}")
    return (x - mu) / sigma


class NormalizationContext:
    """Per-query candidate statistics for one database.

    Built once per normalized query (one pass over the store, same
    asymptotics as SeqScan's read phase but with no page I/O — it uses
    the zero-I/O peek path, so NUM_IO accounting only ever charges for
    pages an engine actually fetches).  Every lookup indexes the
    precomputed per-sequence vectors, which guarantees scalar and
    batched reads of the same ``(sid, start)`` return identical floats.
    """

    def __init__(self, store: SequenceStore, query_length: int) -> None:
        if query_length < 1:
            raise QueryError(
                f"query_length must be >= 1, got {query_length}"
            )
        self.query_length = query_length
        self._stats: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        mu_lo = np.inf
        mu_hi = -np.inf
        sigma_lo = np.inf
        sigma_hi = -np.inf
        for sid, values in store.iter_sequences():
            mus, sigmas = rolling_stats(values, query_length)
            self._stats[sid] = (mus, sigmas)
            if mus.size:
                mu_lo = min(mu_lo, float(mus.min()))
                mu_hi = max(mu_hi, float(mus.max()))
                sigma_lo = min(sigma_lo, float(sigmas.min()))
                sigma_hi = max(sigma_hi, float(sigmas.max()))
        if not np.isfinite(mu_lo):
            # No sequence holds a full window; bounds never fire, but
            # keep the ranges well-formed for the rect transform.
            mu_lo = mu_hi = 0.0
            sigma_lo = sigma_hi = 1.0
        #: Global ``[min, max]`` of candidate means across the store.
        self.mu_range: Tuple[float, float] = (mu_lo, mu_hi)
        #: Global ``[min, max]`` of effective candidate deviations.
        self.sigma_range: Tuple[float, float] = (sigma_lo, sigma_hi)

    def stats(self, sid: int, start: int) -> Tuple[float, float]:
        """``(mu, sigma_eff)`` of candidate ``(sid, start)``.

        Out-of-range candidates (negative start, window past the end,
        unknown sid) get the identity transform ``(0, 1)`` — sound,
        because every engine discards them at its bounds check before
        verification.
        """
        pair = self._stats.get(sid)
        if pair is None:
            return 0.0, 1.0
        mus, sigmas = pair
        if not 0 <= start < mus.size:
            return 0.0, 1.0
        return float(mus[start]), float(sigmas[start])

    def stats_array(
        self, sid: int, starts: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`stats` over an int array of starts."""
        starts = np.asarray(starts, dtype=np.int64)
        pair = self._stats.get(sid)
        if pair is None:
            return (
                np.zeros(starts.size, dtype=np.float64),
                np.ones(starts.size, dtype=np.float64),
            )
        mus, sigmas = pair
        valid = (starts >= 0) & (starts < mus.size)
        safe = np.where(valid, starts, 0)
        out_mu = np.where(valid, mus[safe], 0.0)
        out_sigma = np.where(valid, sigmas[safe], 1.0)
        return out_mu, out_sigma

    def for_window(
        self, sliding_offset: int, data_stride: int
    ) -> "WindowNormalizer":
        """Adapter for one query window (class ``j``, stride ``J``)."""
        return WindowNormalizer(self, sliding_offset, data_stride)


class WindowNormalizer:
    """Per-query-window stats lookup for R*-tree leaf batches.

    A leaf record ``(sid, m)`` joined against query window ``j`` implies
    candidate start ``m * J - j`` (the GeneralMatch alignment, with
    ``J = 1`` covering PSM's sliding windows); this adapter maps a block
    of leaf records to the ``(mu, sigma)`` of the candidates they imply
    and carries the global ranges internal-node bounds transform with.
    """

    __slots__ = ("context", "sliding_offset", "data_stride")

    def __init__(
        self,
        context: NormalizationContext,
        sliding_offset: int,
        data_stride: int,
    ) -> None:
        if data_stride < 1:
            raise QueryError(
                f"data_stride must be >= 1, got {data_stride}"
            )
        self.context = context
        self.sliding_offset = sliding_offset
        self.data_stride = data_stride

    def candidate_start(self, window_index: int) -> int:
        """Start implied by data window ``m`` under this query window."""
        return window_index * self.data_stride - self.sliding_offset

    def leaf_stats(
        self, records: Iterable[_WindowRecord]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(mus, sigmas)`` for the candidates a leaf block implies."""
        mus: List[float] = []
        sigmas: List[float] = []
        for record in records:
            mu, sigma = self.context.stats(
                record.sid, self.candidate_start(record.window_index)
            )
            mus.append(mu)
            sigmas.append(sigma)
        return (
            np.asarray(mus, dtype=np.float64),
            np.asarray(sigmas, dtype=np.float64),
        )

    @property
    def mu_range(self) -> Tuple[float, float]:
        return self.context.mu_range

    @property
    def sigma_range(self) -> Tuple[float, float]:
        return self.context.sigma_range
