"""Core algorithmic layer.

Implements the paper's mathematical machinery:

* :mod:`repro.core.distance` — the constrained DTW distance (Eq. 1).
* :mod:`repro.core.envelope` — query envelopes (Definition 1).
* :mod:`repro.core.paa` — piecewise aggregate approximation.
* :mod:`repro.core.lower_bounds` — the lower-bound chain
  ``DTW >= LB_Keogh >= LB_PAA >= MINDIST`` (Lemma 1) plus the
  MDMWP-distance (Definition 2) and MSEQ-distance (Definition 6).
* :mod:`repro.core.windows` — DualMatch windowing and the matching
  subsequence equivalence classes (Definition 4, Lemma 3).
* :mod:`repro.core.metrics` — the paper's performance counters.
* :mod:`repro.core.results` — match records and the top-k collector.

The public :class:`~repro.api.SubsequenceDatabase` facade lives in
:mod:`repro.api` (it wires core, storage, index, and engines together).
"""

from repro.core.distance import dtw_distance, dtw_pow, lp_distance
from repro.core.envelope import Envelope, query_envelope
from repro.core.metrics import QueryStats
from repro.core.paa import paa, paa_envelope
from repro.core.results import Match, TopKCollector
from repro.core.windows import QueryWindow, QueryWindowSet

__all__ = [
    "dtw_distance",
    "dtw_pow",
    "lp_distance",
    "Envelope",
    "query_envelope",
    "paa",
    "paa_envelope",
    "QueryWindow",
    "QueryWindowSet",
    "Match",
    "TopKCollector",
    "QueryStats",
]
