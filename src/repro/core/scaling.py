"""Query scaling for variable-length matching.

Problem Definition 1 fixes the match length to ``Len(Q)``; the paper
notes that "in order to match data subsequences of length l != |Q|, one
can scale Q with reasonable scale factors".  This module provides that
mechanism: linear-interpolation resampling of the query to a set of
target lengths, plus a length-normalised distance so results from
different scales are comparable when merged.

Normalisation: raw ``DTW_rho`` grows with sequence length (it sums one
cost term per step), so top-k across scales would systematically favour
short scales.  We compare by ``distance / length ** (1/p)`` — the
per-step root-mean cost under the ``p``-norm — which is scale-free for
self-similar signals.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.exceptions import QueryError


def resample(query: Sequence[float], length: int) -> np.ndarray:
    """Linearly resample ``query`` to ``length`` samples.

    >>> resample([0.0, 2.0], 3).tolist()
    [0.0, 1.0, 2.0]
    """
    array = np.ascontiguousarray(query, dtype=np.float64)
    if array.ndim != 1 or array.size < 2:
        raise QueryError(
            f"resample needs a 1-D query of length >= 2, got shape "
            f"{array.shape}"
        )
    if length < 2:
        raise QueryError(f"target length must be >= 2, got {length}")
    if length == array.size:
        return array.copy()
    positions = np.linspace(0.0, array.size - 1, num=length)
    return np.interp(positions, np.arange(array.size), array)


def scale_lengths(
    base_length: int,
    factors: Sequence[float],
    omega: int,
) -> List[int]:
    """Valid target lengths for a set of scale factors.

    Lengths are rounded to the nearest integer and filtered to satisfy
    the DualMatch constraint ``length >= 2 * omega - 1``; duplicates are
    dropped while preserving order.
    """
    lengths: List[int] = []
    for factor in factors:
        if factor <= 0:
            raise QueryError(f"scale factor must be > 0, got {factor}")
        length = int(round(base_length * factor))
        if length >= 2 * omega - 1 and length not in lengths:
            lengths.append(length)
    if not lengths:
        raise QueryError(
            f"no scale factor yields a length >= 2 * omega - 1 = "
            f"{2 * omega - 1}"
        )
    return lengths


def normalized_distance(distance: float, length: int, p: float = 2.0) -> float:
    """Per-step distance, comparable across match lengths."""
    if length < 1:
        raise QueryError(f"length must be >= 1, got {length}")
    return distance / length ** (1.0 / p)
