"""Dynamic time warping under the Sakoe–Chiba band (Eq. 1 of the paper).

All internal comparisons in the library happen in *p-th-power space*
(:func:`dtw_pow`, and the ``*_pow`` lower bounds), because the pruning
logic constantly sums window-level distances; taking roots only at the API
boundary keeps the lower-bound chain exact and avoids needless ``pow``
round trips.  :func:`dtw_distance` is the user-facing rooted form.

The implementation supports *early abandoning*: once every cell of a DP
row exceeds a caller-supplied threshold, no warping path can finish below
it, so the computation stops and returns ``inf``.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import QueryError

_INF = math.inf


def _as_list(values: Sequence[float]) -> list:
    """Plain-float list view; scalar Python arithmetic beats numpy here."""
    if isinstance(values, np.ndarray):
        return values.tolist()
    return [float(v) for v in values]


def lp_distance(a: Sequence[float], b: Sequence[float], p: float = 2.0) -> float:
    """The L_p distance between equal-length sequences.

    ``DTW_rho`` degenerates to this when ``rho == 0``.
    """
    array_a = np.asarray(a, dtype=np.float64)
    array_b = np.asarray(b, dtype=np.float64)
    if array_a.shape != array_b.shape:
        raise QueryError(
            f"L_p distance needs equal lengths, got {array_a.shape} vs "
            f"{array_b.shape}"
        )
    gaps = np.abs(array_a - array_b)
    # Exact dispatch on the user-supplied norm order, not a computed float.
    if p == 2.0:  # repro: ignore[RS003]
        return float(math.sqrt(float(np.dot(gaps, gaps))))
    return float(np.sum(gaps**p) ** (1.0 / p))


def dtw_pow(
    s: Sequence[float],
    q: Sequence[float],
    rho: int,
    p: float = 2.0,
    threshold_pow: float = _INF,
) -> float:
    """``DTW_rho(S, Q) ** p`` with band constraint and early abandoning.

    Parameters
    ----------
    s, q:
        Data and query sequences.  The paper defines DTW for equal
        lengths; unequal lengths are accepted when the band still permits
        a complete path (``|len(s) - len(q)| <= rho``).
    rho:
        Sakoe–Chiba warping width: matrix entry ``(i, j)`` is infinite
        when ``|i - j| > rho``.
    p:
        Norm order (the paper's ``p``; 2 by default).
    threshold_pow:
        Early-abandon threshold *in p-th-power space*.  If every cell of
        some DP row exceeds it, ``inf`` is returned immediately.

    Returns
    -------
    float
        The p-th power of the constrained DTW distance, or ``inf`` when
        abandoned / no path exists.
    """
    if rho < 0:
        raise QueryError(f"warping width rho must be >= 0, got {rho}")
    n = len(q)
    m = len(s)
    if n == 0 and m == 0:
        return 0.0
    if n == 0 or m == 0:
        return _INF
    if abs(n - m) > rho:
        return _INF

    qs = _as_list(q)
    ss = _as_list(s)
    # Exact dispatch on the user-supplied norm order, not a computed float.
    squared = p == 2.0  # repro: ignore[RS003]

    # prev[j] holds row i-1 of the DP matrix; positions outside the band
    # stay infinite.  Row i covers data columns [i - rho, i + rho].
    prev = [_INF] * m
    for i in range(n):
        lo = i - rho
        if lo < 0:
            lo = 0
        hi = i + rho
        if hi >= m:
            hi = m - 1
        cur = [_INF] * m
        qi = qs[i]
        row_min = _INF
        left = _INF  # cur[j - 1], the within-row dependency
        for j in range(lo, hi + 1):
            gap = ss[j] - qi
            if gap < 0.0:
                gap = -gap
            cost = gap * gap if squared else gap**p
            if i == 0 and j == 0:
                best = 0.0
            else:
                best = prev[j]  # vertical move
                diag = prev[j - 1] if j > 0 else _INF
                if diag < best:
                    best = diag
                if left < best:
                    best = left
            value = cost + best
            cur[j] = value
            left = value
            if value < row_min:
                row_min = value
        if row_min > threshold_pow:
            return _INF
        prev = cur
    return prev[m - 1]


def dtw_distance(
    s: Sequence[float],
    q: Sequence[float],
    rho: int,
    p: float = 2.0,
    threshold: Optional[float] = None,
) -> float:
    """The constrained DTW distance ``DTW_rho(S, Q)`` (rooted form).

    Parameters mirror :func:`dtw_pow`; ``threshold`` (if given) is in
    distance space and enables early abandoning.

    >>> dtw_distance([1.0, 2.0, 3.0], [1.0, 2.0, 3.0], rho=1)
    0.0
    """
    threshold_pow = _INF if threshold is None else threshold**p
    value = dtw_pow(s, q, rho, p=p, threshold_pow=threshold_pow)
    if math.isinf(value):
        return _INF
    return value ** (1.0 / p)
