"""Dynamic time warping under the Sakoe–Chiba band (Eq. 1 of the paper).

All internal comparisons in the library happen in *p-th-power space*
(:func:`dtw_pow`, and the ``*_pow`` lower bounds), because the pruning
logic constantly sums window-level distances; taking roots only at the API
boundary keeps the lower-bound chain exact and avoids needless ``pow``
round trips.  :func:`dtw_distance` is the user-facing rooted form.

Two kernels implement the same recurrence:

* a scalar row-by-row DP, fastest when the band is narrow (every engine
  query in the paper's parameter range lands here);
* an **anti-diagonal (wavefront) kernel**: cells on one anti-diagonal
  ``i + j = d`` have no mutual dependencies, so a whole diagonal is
  computed with vectorized NumPy ops.  :func:`dtw_pow_batch` runs the
  wavefront over a *batch* of candidate sequences against one query,
  amortising per-diagonal overhead across the batch — the form the
  ``repro bench`` kernel suite measures.

Both kernels evaluate each DP cell with the identical float64 operations
(``cost + min(three neighbours)``), so for the default ``p == 2`` norm
(cost is ``gap * gap``) their outputs are bit-for-bit equal.  For other
``p`` the per-cell cost goes through ``pow``, where NumPy's vectorized
implementation may differ from libm by 1 ULP, so kernels agree to within
1e-9 relative instead; ``tests/test_kernel_conformance.py`` enforces
both contracts against the scalar oracle in :mod:`repro.core.reference`.

The implementation supports *early abandoning*: once no warping path can
finish below a caller-supplied threshold, the computation stops and
returns ``inf``.  The scalar kernel abandons when every cell of a DP row
exceeds the threshold; the wavefront kernel abandons a batch lane when
every cell of two *consecutive* anti-diagonals exceeds it (every
monotone path crosses at least one of any two consecutive
anti-diagonals, so both rules are sound).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import QueryError

_INF = math.inf

#: Minimum Sakoe–Chiba band width (in DP cells per row) before the
#: wavefront kernel beats the scalar loop for a single pair.  Below
#: this, per-diagonal NumPy call overhead dominates the handful of
#: cells it vectorises; above it, the wavefront wins and keeps winning
#: as the band grows.  Both kernels are bit-for-bit identical (p = 2),
#: so the dispatch affects speed only.
_WAVEFRONT_MIN_BAND = 128


def _as_list(values: Sequence[float]) -> list:
    """Plain-float list view; scalar Python arithmetic beats numpy here.

    ``tolist()`` / ``float()`` upcast exactly, so float32 (or integer)
    inputs accumulate in float64 like everything else.
    """
    if isinstance(values, np.ndarray):
        if values.dtype == np.float64:
            return values.tolist()
        return [float(v) for v in values.tolist()]
    return [float(v) for v in values]


def _reject_nan(array: np.ndarray, label: str) -> None:
    """NaN poisons every DP comparison silently; fail loudly instead."""
    if np.isnan(array).any():
        raise QueryError(f"{label} contains NaN")


def lp_distance(a: Sequence[float], b: Sequence[float], p: float = 2.0) -> float:
    """The L_p distance between equal-length sequences.

    ``DTW_rho`` degenerates to this when ``rho == 0``.
    """
    array_a = np.asarray(a, dtype=np.float64)
    array_b = np.asarray(b, dtype=np.float64)
    if array_a.shape != array_b.shape:
        raise QueryError(
            f"L_p distance needs equal lengths, got {array_a.shape} vs "
            f"{array_b.shape}"
        )
    gaps = np.abs(array_a - array_b)
    # Exact dispatch on the user-supplied norm order, not a computed float.
    if p == 2.0:  # repro: ignore[RS003]
        return float(math.sqrt(float(np.dot(gaps, gaps))))
    return float(np.sum(gaps**p) ** (1.0 / p))


def _dtw_pow_scalar(
    ss: list,
    qs: list,
    rho: int,
    p: float,
    threshold_pow: float,
) -> float:
    """Row-by-row banded DP over plain Python floats (float64)."""
    n = len(qs)
    m = len(ss)
    # Exact dispatch on the user-supplied norm order, not a computed float.
    squared = p == 2.0  # repro: ignore[RS003]

    # prev[j] holds row i-1 of the DP matrix; positions outside the band
    # stay infinite.  Row i covers data columns [i - rho, i + rho].
    prev = [_INF] * m
    for i in range(n):
        lo = i - rho
        if lo < 0:
            lo = 0
        hi = i + rho
        if hi >= m:
            hi = m - 1
        cur = [_INF] * m
        qi = qs[i]
        row_min = _INF
        left = _INF  # cur[j - 1], the within-row dependency
        for j in range(lo, hi + 1):
            gap = ss[j] - qi
            if gap < 0.0:
                gap = -gap
            cost = gap * gap if squared else gap**p
            if i == 0 and j == 0:
                best = 0.0
            else:
                best = prev[j]  # vertical move
                diag = prev[j - 1] if j > 0 else _INF
                if diag < best:
                    best = diag
                if left < best:
                    best = left
            value = cost + best
            cur[j] = value
            left = value
            if value < row_min:
                row_min = value
        if row_min > threshold_pow:
            return _INF
        prev = cur
    return prev[m - 1]


def dtw_pow_batch(
    batch: Sequence[Sequence[float]],
    q: Sequence[float],
    rho: int,
    p: float = 2.0,
    threshold_pow: float = _INF,
) -> np.ndarray:
    """``DTW_rho(S_b, Q) ** p`` for a batch of equal-length candidates.

    The anti-diagonal wavefront kernel: DP cells on one anti-diagonal
    ``i + j = d`` are mutually independent, so each diagonal of every
    batch lane is computed in one set of vectorized float64 ops.  Costs
    accumulate in float64 regardless of the input dtype.

    Parameters
    ----------
    batch:
        2-D array-like, one candidate sequence per row (all length
        ``m``).
    q, rho, p:
        As in :func:`dtw_pow`.
    threshold_pow:
        Early-abandon threshold in p-th-power space, shared by all
        lanes.  A lane is abandoned (its result becomes ``inf``) once
        every cell of two consecutive anti-diagonals exceeds it.

    Returns
    -------
    numpy.ndarray
        Shape ``(len(batch),)`` float64 vector of p-th-power DTW
        distances; ``inf`` marks abandoned lanes and band-infeasible
        problems.
    """
    if rho < 0:
        raise QueryError(f"warping width rho must be >= 0, got {rho}")
    rows = np.ascontiguousarray(batch, dtype=np.float64)
    if rows.ndim != 2:
        raise QueryError(
            f"batch must be 2-D (candidates, length), got shape {rows.shape}"
        )
    qa = np.ascontiguousarray(q, dtype=np.float64)
    if qa.ndim != 1:
        raise QueryError(f"query must be 1-D, got shape {qa.shape}")
    lanes, m = rows.shape
    n = int(qa.size)
    if lanes == 0:
        return np.empty(0, dtype=np.float64)
    _reject_nan(rows, "batch")
    _reject_nan(qa, "query")
    if n == 0 and m == 0:
        return np.zeros(lanes, dtype=np.float64)
    if n == 0 or m == 0 or abs(n - m) > rho:
        return np.full(lanes, _INF, dtype=np.float64)

    # Exact dispatch on the user-supplied norm order, not a computed float.
    squared = p == 2.0  # repro: ignore[RS003]
    limited = not math.isinf(threshold_pow)

    # Three rotating (lanes, n + 1) buffers: column i + 1 holds DP row i
    # of one anti-diagonal; column 0 is a permanent -infinity-row pad.
    # Only columns [lo, hi + 2] of a recycled buffer are ever read again
    # before being rewritten, so resetting the two boundary columns to
    # inf after each diagonal keeps stale values unreachable.
    width = n + 1
    prev2 = np.full((lanes, width), _INF, dtype=np.float64)
    prev1 = np.full((lanes, width), _INF, dtype=np.float64)
    cur = np.full((lanes, width), _INF, dtype=np.float64)
    prev_min = np.full(lanes, _INF, dtype=np.float64)
    for d in range(n + m - 1):
        # Band and matrix constraints on the row index i along diagonal
        # d: |i - (d - i)| <= rho and 0 <= d - i < m.
        lo = max(0, d - m + 1, (d - rho + 1) // 2)
        hi = min(n - 1, d, (d + rho) // 2)
        if lo > hi:
            # Empty diagonal (rho == 0, odd d).  Rotate with an all-inf
            # current buffer so the d+1/d+2 dependencies stay correct.
            cur.fill(_INF)
            diag_min = np.full(lanes, _INF, dtype=np.float64)
        else:
            # s[d - i] for i = lo..hi is a reversed slice of the data.
            s_slice = rows[:, d - hi : d - lo + 1][:, ::-1]
            gaps = np.abs(s_slice - qa[lo : hi + 1])
            cost = gaps * gaps if squared else gaps**p
            if d == 0:
                vals = cost  # the single corner cell (0, 0)
            else:
                vert = prev1[:, lo : hi + 1]  # (i-1, j)
                horiz = prev1[:, lo + 1 : hi + 2]  # (i, j-1)
                best = np.minimum(vert, horiz)
                np.minimum(best, prev2[:, lo : hi + 1], out=best)  # (i-1, j-1)
                vals = cost + best
            cur[:, lo + 1 : hi + 2] = vals
            cur[:, lo] = _INF
            if hi + 2 <= n:
                cur[:, hi + 2] = _INF
            diag_min = vals.min(axis=1)
        if limited:
            stuck = np.minimum(prev_min, diag_min) > threshold_pow
            if stuck.any():
                # Every complete warping path crosses at least one cell
                # of diagonals {d-1, d}; all of them exceed the
                # threshold, so these lanes cannot finish below it.
                cur[stuck] = _INF
                diag_min = np.where(stuck, _INF, diag_min)
                if bool(stuck.all()):
                    return np.full(lanes, _INF, dtype=np.float64)
        prev_min = diag_min
        prev2, prev1, cur = prev1, cur, prev2
    # After the final rotation prev1 holds the last diagonal; the goal
    # cell (n-1, m-1) lives in DP row n-1, i.e. buffer column n.
    return prev1[:, n].copy()


def dtw_pow_wavefront(
    s: Sequence[float],
    q: Sequence[float],
    rho: int,
    p: float = 2.0,
    threshold_pow: float = _INF,
) -> float:
    """Single-pair wavefront DTW (the batch kernel with one lane)."""
    array = np.asarray(s, dtype=np.float64)
    if array.ndim != 1:
        raise QueryError(f"sequence must be 1-D, got shape {array.shape}")
    return float(
        dtw_pow_batch(
            array.reshape(1, -1), q, rho, p=p, threshold_pow=threshold_pow
        )[0]
    )


def dtw_pow(
    s: Sequence[float],
    q: Sequence[float],
    rho: int,
    p: float = 2.0,
    threshold_pow: float = _INF,
) -> float:
    """``DTW_rho(S, Q) ** p`` with band constraint and early abandoning.

    Parameters
    ----------
    s, q:
        Data and query sequences.  The paper defines DTW for equal
        lengths; unequal lengths are accepted when the band still permits
        a complete path (``|len(s) - len(q)| <= rho``).  NaN values are
        rejected with :class:`~repro.exceptions.QueryError`.
    rho:
        Sakoe–Chiba warping width: matrix entry ``(i, j)`` is infinite
        when ``|i - j| > rho``.
    p:
        Norm order (the paper's ``p``; 2 by default).
    threshold_pow:
        Early-abandon threshold *in p-th-power space*.  When no path can
        finish at or below it, ``inf`` is returned immediately.

    Returns
    -------
    float
        The p-th power of the constrained DTW distance, or ``inf`` when
        abandoned / no path exists.

    Notes
    -----
    Dispatches between the scalar and wavefront kernels on the band
    width (:data:`_WAVEFRONT_MIN_BAND`); both produce bit-identical
    values, so the dispatch is purely a speed decision.
    """
    if rho < 0:
        raise QueryError(f"warping width rho must be >= 0, got {rho}")
    n = len(q)
    m = len(s)
    if n == 0 and m == 0:
        return 0.0
    if n == 0 or m == 0:
        return _INF
    if abs(n - m) > rho:
        return _INF

    band = min(2 * rho + 1, m)
    if band >= _WAVEFRONT_MIN_BAND:
        return dtw_pow_wavefront(s, q, rho, p=p, threshold_pow=threshold_pow)

    qs = _as_list(q)
    ss = _as_list(s)
    for value in qs:
        if value != value:
            raise QueryError("query contains NaN")
    for value in ss:
        if value != value:
            raise QueryError("sequence contains NaN")
    return _dtw_pow_scalar(ss, qs, rho, p, threshold_pow)


def dtw_distance(
    s: Sequence[float],
    q: Sequence[float],
    rho: int,
    p: float = 2.0,
    threshold: Optional[float] = None,
) -> float:
    """The constrained DTW distance ``DTW_rho(S, Q)`` (rooted form).

    Parameters mirror :func:`dtw_pow`; ``threshold`` (if given) is in
    distance space and enables early abandoning.

    >>> dtw_distance([1.0, 2.0, 3.0], [1.0, 2.0, 3.0], rho=1)
    0.0
    """
    threshold_pow = _INF if threshold is None else threshold**p
    value = dtw_pow(s, q, rho, p=p, threshold_pow=threshold_pow)
    if math.isinf(value):
        return _INF
    return value ** (1.0 / p)
