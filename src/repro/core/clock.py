"""Injectable monotonic time sources.

Everything in the library that reads or spends time — deadline checks in
:mod:`repro.control`, retry backoff in :mod:`repro.storage.buffer`,
circuit-breaker reset timers in :mod:`repro.storage.circuit`, latency
faults in :mod:`repro.storage.faults` — goes through a :class:`Clock`
so tests and the chaos harness can substitute :class:`FakeClock` and
never block on real wall-clock time.

This module sits at the bottom of the import graph on purpose: it must
stay importable from both the storage layer and the control plane
without creating a cycle.
"""

from __future__ import annotations

import time

from repro.exceptions import ConfigurationError


class Clock:
    """Injectable time source: monotonic seconds plus a sleep.

    The real implementation (:class:`MonotonicClock`) delegates to
    :mod:`time`; :class:`FakeClock` advances manually so deadline and
    backoff behaviour is testable without wall-clock waits.
    """

    def monotonic(self) -> float:
        """Current monotonic time in seconds."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block (or simulate blocking) for ``seconds``."""
        raise NotImplementedError


class MonotonicClock(Clock):
    """The real clock: ``time.monotonic`` and ``time.sleep``."""

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


#: Shared default instance — the clock used when none is injected.
MONOTONIC_CLOCK = MonotonicClock()


class FakeClock(Clock):
    """A deterministic clock for tests and the chaos harness.

    ``sleep`` advances simulated time instead of blocking, and
    ``auto_advance`` ticks the clock forward on every ``monotonic()``
    read — which makes deadline expiry a deterministic function of the
    number of checkpoints executed, independent of host speed.
    """

    def __init__(self, start: float = 0.0, auto_advance: float = 0.0) -> None:
        if auto_advance < 0:
            raise ConfigurationError(
                f"auto_advance must be >= 0, got {auto_advance}"
            )
        self._now = float(start)
        self.auto_advance = float(auto_advance)
        #: Total simulated seconds spent inside ``sleep``.
        self.slept_s = 0.0

    def monotonic(self) -> float:
        now = self._now
        self._now += self.auto_advance
        return now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigurationError(f"cannot sleep {seconds} seconds")
        self._now += seconds
        self.slept_s += seconds

    def advance(self, seconds: float) -> None:
        """Move simulated time forward by ``seconds``."""
        if seconds < 0:
            raise ConfigurationError(f"cannot advance by {seconds}")
        self._now += seconds
