"""The lower-bound chain of Lemma 1 plus the paper's pruning distances.

For a query envelope ``E(Q)`` and a data (sub)sequence ``S``::

    DTW_rho(Q, S)  >=  LB_Keogh(E(Q), S)  >=  LB_PAA(P(E(Q)), P(S))
                   >=  MINDIST(P(E(Q)), MBR containing P(S))

On top of this chain the paper defines two composite bounds:

* the **MDMWP-distance** (Definition 2, from HLMJ [12]):
  ``(r * LB_PAA(q_m, s_m)^p)^(1/p)`` where ``(q_m, s_m)`` is the
  minimum-distance matching window pair and ``r`` the guaranteed number
  of disjoint windows inside any candidate;
* the **MSEQ-distance** (Definition 6): the p-norm combination of the
  per-priority-queue frontier distances within one equivalence class.

Everything here works in p-th-power space (``*_pow`` functions); rooted
convenience wrappers are provided for the public API.

Every bound has two forms: a scalar one (one candidate at a time, the
historical API) and a ``*_batch`` one that scores a whole block of
candidates per call — the form the engines use to prune candidate
windows and R*-tree entries without per-entry Python overhead.  Both
forms share the same gap construction and the same einsum reduction, so
a scalar call and the matching lane of a batch call are bit-for-bit
identical; ``tests/test_kernel_conformance.py`` enforces this against
the scalar oracles in :mod:`repro.core.reference`.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.core.envelope import Envelope
from repro.exceptions import QueryError

_INF = math.inf


def _gaps_outside_envelope(
    lower: np.ndarray, upper: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """Per-element distance from ``values`` to the band ``[lower, upper]``.

    Broadcasts: ``values`` may be one sequence ``(n,)`` or a batch
    ``(B, n)`` against an ``(n,)`` envelope.
    """
    above = values - upper
    below = lower - values
    gaps = np.maximum(above, below)
    np.maximum(gaps, 0.0, out=gaps)
    return gaps


def _pow_sum(gaps: np.ndarray, p: float) -> float:
    """``sum(gaps ** p)`` in float64.

    The p == 2 fast path uses the same einsum reduction as
    :func:`_pow_sum_batch` (not BLAS ``dot``, whose summation order can
    differ by an ULP), so scalar and batched bounds stay bit-identical.
    """
    # Exact dispatch on the user-supplied norm order, not a computed float.
    if p == 2.0:  # repro: ignore[RS003]
        return float(np.einsum("i,i->", gaps, gaps))
    return float(np.sum(gaps**p))


def _pow_sum_batch(gaps: np.ndarray, p: float) -> np.ndarray:
    """Row-wise ``sum(gaps ** p)`` for a ``(B, n)`` gap matrix."""
    # Exact dispatch on the user-supplied norm order, not a computed float.
    if p == 2.0:  # repro: ignore[RS003]
        return np.einsum("ij,ij->i", gaps, gaps)
    return np.sum(gaps**p, axis=1)


def _as_batch(rows: Sequence[Sequence[float]], label: str) -> np.ndarray:
    """Validate and coerce a batch argument to a float64 ``(B, n)`` array."""
    array = np.asarray(rows, dtype=np.float64)
    if array.ndim != 2:
        raise QueryError(f"{label} must be 2-D (batch, length), got shape {array.shape}")
    return array


def lb_keogh_pow(envelope: Envelope, values: Sequence[float], p: float = 2.0) -> float:
    """``LB_Keogh(E(Q), S) ** p`` — the tight envelope bound of [13]."""
    array = np.asarray(values, dtype=np.float64)
    if array.size != len(envelope):
        raise QueryError(
            f"LB_Keogh needs equal lengths: envelope {len(envelope)}, "
            f"sequence {array.size}"
        )
    gaps = _gaps_outside_envelope(envelope.lower, envelope.upper, array)
    return _pow_sum(gaps, p)


def lb_keogh(envelope: Envelope, values: Sequence[float], p: float = 2.0) -> float:
    """Rooted ``LB_Keogh`` (the paper's Section 2 definition)."""
    return lb_keogh_pow(envelope, values, p) ** (1.0 / p)


def lb_keogh_pow_batch(
    envelope: Envelope, rows: Sequence[Sequence[float]], p: float = 2.0
) -> np.ndarray:
    """``LB_Keogh(E(Q), S_b) ** p`` for a batch of candidate sequences.

    Row ``b`` is bit-for-bit equal to ``lb_keogh_pow(envelope, rows[b],
    p)``.  Accumulates in float64 regardless of the input dtype.
    """
    array = _as_batch(rows, "candidate batch")
    if array.shape[1] != len(envelope):
        raise QueryError(
            f"LB_Keogh needs equal lengths: envelope {len(envelope)}, "
            f"batch rows {array.shape[1]}"
        )
    gaps = _gaps_outside_envelope(envelope.lower, envelope.upper, array)
    return _pow_sum_batch(gaps, p)


def lb_paa_pow(
    paa_lower: np.ndarray,
    paa_upper: np.ndarray,
    paa_values: np.ndarray,
    seg_len: int,
    p: float = 2.0,
) -> float:
    """``LB_PAA(P(E(Q)), P(S)) ** p`` (Zhu & Shasha [24]).

    Each PAA dimension summarises ``seg_len`` raw values; the power-mean
    inequality gives ``seg_len * |mean gap|^p <= sum |gap_i|^p`` per
    segment, hence the ``seg_len`` scaling keeps the bound below
    ``LB_Keogh ** p``.
    """
    if seg_len < 1:
        raise QueryError(f"seg_len must be >= 1, got {seg_len}")
    gaps = _gaps_outside_envelope(paa_lower, paa_upper, paa_values)
    return seg_len * _pow_sum(gaps, p)


def lb_paa(
    paa_lower: np.ndarray,
    paa_upper: np.ndarray,
    paa_values: np.ndarray,
    seg_len: int,
    p: float = 2.0,
) -> float:
    """Rooted ``LB_PAA``."""
    return lb_paa_pow(paa_lower, paa_upper, paa_values, seg_len, p) ** (1.0 / p)


def mindist_pow(
    paa_lower: np.ndarray,
    paa_upper: np.ndarray,
    rect_low: np.ndarray,
    rect_high: np.ndarray,
    seg_len: int,
    p: float = 2.0,
) -> float:
    """``MINDIST(P(E(q)), MBR) ** p`` — Definition 6's MBR case.

    Per dimension this is the gap between the envelope interval
    ``[L_j, U_j]`` and the MBR interval ``[lo_j, hi_j]`` (zero when they
    overlap); it lower-bounds ``lb_paa_pow`` for every point inside the
    MBR, which makes best-first R*-tree descent admissible.
    """
    gap_above = rect_low - paa_upper  # MBR entirely above the envelope
    gap_below = paa_lower - rect_high  # MBR entirely below the envelope
    gaps = np.maximum(gap_above, gap_below)
    np.maximum(gaps, 0.0, out=gaps)
    return seg_len * _pow_sum(gaps, p)


def maxdist_pow(
    paa_lower: np.ndarray,
    paa_upper: np.ndarray,
    rect_low: np.ndarray,
    rect_high: np.ndarray,
    seg_len: int,
    p: float = 2.0,
) -> float:
    """``MAXDIST(P(E(q)), MBR) ** p`` — upper bound over points in the MBR.

    The per-dimension gap to the envelope band is convex in the point
    coordinate, so its maximum over ``[lo_j, hi_j]`` is attained at an
    endpoint.  RU-COST's pivot selection (Section 4) uses
    ``[MINDIST, MAXDIST]`` ranges to approximate leaf-entry densities
    without expanding nodes.
    """
    gaps_at_low = _gaps_outside_envelope(paa_lower, paa_upper, rect_low)
    gaps_at_high = _gaps_outside_envelope(paa_lower, paa_upper, rect_high)
    gaps = np.maximum(gaps_at_low, gaps_at_high)
    return seg_len * _pow_sum(gaps, p)


def lb_paa_pow_batch(
    paa_lower: np.ndarray,
    paa_upper: np.ndarray,
    paa_rows: Sequence[Sequence[float]],
    seg_len: int,
    p: float = 2.0,
) -> np.ndarray:
    """``LB_PAA(P(E(Q)), P(S_b)) ** p`` for a batch of PAA points.

    Row ``b`` is bit-for-bit equal to ``lb_paa_pow(paa_lower, paa_upper,
    paa_rows[b], seg_len, p)``.
    """
    if seg_len < 1:
        raise QueryError(f"seg_len must be >= 1, got {seg_len}")
    array = _as_batch(paa_rows, "PAA batch")
    gaps = _gaps_outside_envelope(
        np.asarray(paa_lower, dtype=np.float64),
        np.asarray(paa_upper, dtype=np.float64),
        array,
    )
    return seg_len * _pow_sum_batch(gaps, p)


def mindist_pow_batch(
    paa_lower: np.ndarray,
    paa_upper: np.ndarray,
    rect_lows: Sequence[Sequence[float]],
    rect_highs: Sequence[Sequence[float]],
    seg_len: int,
    p: float = 2.0,
) -> np.ndarray:
    """``MINDIST(P(E(q)), MBR_b) ** p`` for a batch of rectangles.

    Row ``b`` is bit-for-bit equal to ``mindist_pow(...)`` on rectangle
    ``b``.  A *degenerate* rectangle (``low == high``, i.e. a leaf
    entry's PAA point) makes this identical — same subtractions, same
    reduction — to ``lb_paa_pow`` of that point, which is how
    :func:`batch_lower_bounds` scores mixed leaf/internal entry blocks
    with one kernel.
    """
    if seg_len < 1:
        raise QueryError(f"seg_len must be >= 1, got {seg_len}")
    lows = _as_batch(rect_lows, "rectangle lows")
    highs = _as_batch(rect_highs, "rectangle highs")
    if lows.shape != highs.shape:
        raise QueryError(
            f"rectangle halves differ in shape: {lows.shape} vs {highs.shape}"
        )
    gap_above = lows - np.asarray(paa_upper, dtype=np.float64)
    gap_below = np.asarray(paa_lower, dtype=np.float64) - highs
    gaps = np.maximum(gap_above, gap_below)
    np.maximum(gaps, 0.0, out=gaps)
    return seg_len * _pow_sum_batch(gaps, p)


def maxdist_pow_batch(
    paa_lower: np.ndarray,
    paa_upper: np.ndarray,
    rect_lows: Sequence[Sequence[float]],
    rect_highs: Sequence[Sequence[float]],
    seg_len: int,
    p: float = 2.0,
) -> np.ndarray:
    """``MAXDIST(P(E(q)), MBR_b) ** p`` for a batch of rectangles.

    Row ``b`` is bit-for-bit equal to ``maxdist_pow(...)`` on rectangle
    ``b``; on a degenerate rectangle it equals the point's
    envelope-gap distance, i.e. ``lb_paa_pow`` of the point.
    """
    if seg_len < 1:
        raise QueryError(f"seg_len must be >= 1, got {seg_len}")
    lows = _as_batch(rect_lows, "rectangle lows")
    highs = _as_batch(rect_highs, "rectangle highs")
    if lows.shape != highs.shape:
        raise QueryError(
            f"rectangle halves differ in shape: {lows.shape} vs {highs.shape}"
        )
    lo64 = np.asarray(paa_lower, dtype=np.float64)
    up64 = np.asarray(paa_upper, dtype=np.float64)
    gaps_at_low = _gaps_outside_envelope(lo64, up64, lows)
    gaps_at_high = _gaps_outside_envelope(lo64, up64, highs)
    gaps = np.maximum(gaps_at_low, gaps_at_high)
    return seg_len * _pow_sum_batch(gaps, p)


def mdmwp_pow_batch(min_pair_pows: Sequence[float], r: int) -> np.ndarray:
    """``MDMWP-distance ** p`` (Definition 2) for a batch of window pairs."""
    if r < 1:
        raise QueryError(f"MDMWP window count r must be >= 1, got {r}")
    return r * np.asarray(min_pair_pows, dtype=np.float64)


def batch_lower_bounds(
    paa_lower: np.ndarray,
    paa_upper: np.ndarray,
    rect_lows: Sequence[Sequence[float]],
    rect_highs: Sequence[Sequence[float]],
    seg_len: int,
    p: float = 2.0,
    include_far: bool = False,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Score a block of R*-tree entries against one query-window envelope.

    The engines' batched pruning entry point: given the PAA envelope of
    a query window and the stacked rectangles of a node's entries
    (leaf entries contribute their PAA point as a degenerate ``low ==
    high`` rectangle), returns the per-entry *near* bound (``MINDIST **
    p``, which for leaf points equals ``LB_PAA ** p`` bit for bit) and,
    when ``include_far`` is set, the *far* bound (``MAXDIST ** p``) used
    by cost-aware queue ordering.

    Both vectors line up index-for-index with the input rectangles, so
    callers can keep their existing per-entry push order and tie-break
    counters while paying one kernel call per node instead of one
    Python-level bound per entry.
    """
    near = mindist_pow_batch(
        paa_lower, paa_upper, rect_lows, rect_highs, seg_len, p
    )
    far: Optional[np.ndarray] = None
    if include_far:
        far = maxdist_pow_batch(
            paa_lower, paa_upper, rect_lows, rect_highs, seg_len, p
        )
    return near, far


# ---------------------------------------------------------------------------
# Z-normalized bounds (ROADMAP item 3; KV-match / UCR-suite style matching).
#
# Under `normalize=True` a candidate S with per-window stats (mu, sigma) is
# matched as (S - mu) / sigma against a z-normalized query.  The leaf-level
# bounds below transform the candidate exactly (same arithmetic as the
# verification path, so LB_Keogh stays float-sound against the normalized
# DTW); the PAA and MBR forms exploit that PAA is affine-equivariant
# (PAA((x - mu) / sigma) == (PAA(x) - mu) / sigma in real arithmetic) and
# carry a one-part-in-1e9 deflation that absorbs the float rounding of the
# affine transform, keeping the Lemma 1 chain sound in float space:
#
#   DTW_znorm >= LB_Keogh_znorm >= LB_PAA_znorm >= MINDIST_znorm
#
# Internal R*-tree nodes aggregate candidates with *different* stats, so
# their rectangles are transformed under the global [mu_lo, mu_hi] x
# [sigma_lo, sigma_hi] box of the store: per dimension the transform
# t(x) = (x - mu) / sigma is monotone in x and attains its extremes over
# the (mu, sigma) box at the box corners, so the 4-corner hull encloses
# every per-candidate transformed rectangle and MINDIST over it
# lower-bounds every candidate the subtree can contain.
# ---------------------------------------------------------------------------

#: Relative margins absorbing float rounding of the affine PAA / corner
#: transforms.  Deflation keeps lower bounds sound (never above the true
#: quantity); inflation keeps the MAXDIST upper bound sound.
_ZNORM_DEFLATE = 1.0 - 1e-9
_ZNORM_INFLATE = 1.0 + 1e-9


def _validate_stat_ranges(
    mu_range: Tuple[float, float], sigma_range: Tuple[float, float]
) -> Tuple[float, float, float, float]:
    """Unpack and sanity-check the global ``(mu, sigma)`` box."""
    mu_lo, mu_hi = float(mu_range[0]), float(mu_range[1])
    sigma_lo, sigma_hi = float(sigma_range[0]), float(sigma_range[1])
    if mu_hi < mu_lo:
        raise QueryError(f"mu_range is inverted: ({mu_lo}, {mu_hi})")
    if not sigma_lo > 0.0 or sigma_hi < sigma_lo:
        raise QueryError(
            f"sigma_range must be positive and ordered, got "
            f"({sigma_lo}, {sigma_hi})"
        )
    return mu_lo, mu_hi, sigma_lo, sigma_hi


def _znorm_rect_hull(
    lows: np.ndarray,
    highs: np.ndarray,
    mu_range: Tuple[float, float],
    sigma_range: Tuple[float, float],
) -> Tuple[np.ndarray, np.ndarray]:
    """Hull of ``(rect - mu) / sigma`` over the ``(mu, sigma)`` box."""
    mu_lo, mu_hi, sigma_lo, sigma_hi = _validate_stat_ranges(
        mu_range, sigma_range
    )
    corners = [
        (mu_lo, sigma_lo),
        (mu_lo, sigma_hi),
        (mu_hi, sigma_lo),
        (mu_hi, sigma_hi),
    ]
    hull_low = np.minimum.reduce([(lows - mu) / sig for mu, sig in corners])
    hull_high = np.maximum.reduce([(highs - mu) / sig for mu, sig in corners])
    return hull_low, hull_high


def lb_keogh_znorm_pow(
    envelope: Envelope,
    values: Sequence[float],
    mu: float,
    sigma: float,
    p: float = 2.0,
) -> float:
    """``LB_Keogh(E(Q_hat), (S - mu) / sigma) ** p``.

    ``envelope`` is the envelope of the *z-normalized* query; the
    candidate is transformed with exactly the arithmetic of
    :func:`repro.core.normalize.znormalize`, so this bound relates to
    the normalized-space DTW precisely as the raw ``lb_keogh_pow``
    relates to raw DTW — no margin needed.
    """
    if not sigma > 0.0:
        raise QueryError(f"sigma must be positive, got {sigma}")
    array = (np.asarray(values, dtype=np.float64) - mu) / sigma
    return lb_keogh_pow(envelope, array, p)


def lb_paa_znorm_pow_batch(
    paa_lower: np.ndarray,
    paa_upper: np.ndarray,
    paa_rows: Sequence[Sequence[float]],
    mus: np.ndarray,
    sigmas: np.ndarray,
    seg_len: int,
    p: float = 2.0,
) -> np.ndarray:
    """``LB_PAA`` of per-candidate z-normalized PAA points, deflated.

    Row ``b``'s stored raw PAA point is mapped through that candidate's
    own ``(mu_b, sigma_b)`` — exact by PAA affine-equivariance up to
    float rounding, which the deflation absorbs — then scored against
    the normalized query's PAA envelope.
    """
    array = _as_batch(paa_rows, "PAA batch")
    mus64 = np.asarray(mus, dtype=np.float64)
    sigmas64 = np.asarray(sigmas, dtype=np.float64)
    if mus64.shape != (array.shape[0],) or sigmas64.shape != (array.shape[0],):
        raise QueryError(
            f"per-row stats must have shape ({array.shape[0]},), got "
            f"{mus64.shape} and {sigmas64.shape}"
        )
    if not bool(np.all(sigmas64 > 0.0)):
        raise QueryError("sigmas must all be positive")
    norm_rows = (array - mus64[:, None]) / sigmas64[:, None]
    return _ZNORM_DEFLATE * lb_paa_pow_batch(
        paa_lower, paa_upper, norm_rows, seg_len, p
    )


def mindist_znorm_pow_batch(
    paa_lower: np.ndarray,
    paa_upper: np.ndarray,
    rect_lows: Sequence[Sequence[float]],
    rect_highs: Sequence[Sequence[float]],
    mu_range: Tuple[float, float],
    sigma_range: Tuple[float, float],
    seg_len: int,
    p: float = 2.0,
) -> np.ndarray:
    """``MINDIST`` of raw MBRs seen through the global stats box.

    Each rectangle is enlarged to the corner hull of its image under
    every ``(mu, sigma)`` in the box, then scored with the standard
    MINDIST and deflated.  Enlarging the rectangle can only shrink
    MINDIST, so the result lower-bounds ``lb_paa_znorm_pow_batch`` of
    every candidate inside the subtree whose stats lie in the box.
    """
    lows = _as_batch(rect_lows, "rectangle lows")
    highs = _as_batch(rect_highs, "rectangle highs")
    if lows.shape != highs.shape:
        raise QueryError(
            f"rectangle halves differ in shape: {lows.shape} vs {highs.shape}"
        )
    hull_low, hull_high = _znorm_rect_hull(lows, highs, mu_range, sigma_range)
    return _ZNORM_DEFLATE * mindist_pow_batch(
        paa_lower, paa_upper, hull_low, hull_high, seg_len, p
    )


def maxdist_znorm_pow_batch(
    paa_lower: np.ndarray,
    paa_upper: np.ndarray,
    rect_lows: Sequence[Sequence[float]],
    rect_highs: Sequence[Sequence[float]],
    mu_range: Tuple[float, float],
    sigma_range: Tuple[float, float],
    seg_len: int,
    p: float = 2.0,
) -> np.ndarray:
    """``MAXDIST`` over the same corner hull, inflated.

    Enlarging the rectangle can only grow MAXDIST, so this stays an
    upper bound on every in-box candidate's normalized ``LB_PAA``; it
    only feeds RU-COST's density ordering, never pruning.
    """
    lows = _as_batch(rect_lows, "rectangle lows")
    highs = _as_batch(rect_highs, "rectangle highs")
    if lows.shape != highs.shape:
        raise QueryError(
            f"rectangle halves differ in shape: {lows.shape} vs {highs.shape}"
        )
    hull_low, hull_high = _znorm_rect_hull(lows, highs, mu_range, sigma_range)
    return _ZNORM_INFLATE * maxdist_pow_batch(
        paa_lower, paa_upper, hull_low, hull_high, seg_len, p
    )


def batch_lower_bounds_znorm(
    paa_lower: np.ndarray,
    paa_upper: np.ndarray,
    rect_lows: Sequence[Sequence[float]],
    rect_highs: Sequence[Sequence[float]],
    mu_range: Tuple[float, float],
    sigma_range: Tuple[float, float],
    seg_len: int,
    p: float = 2.0,
    include_far: bool = False,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Normalized analogue of :func:`batch_lower_bounds` for node blocks."""
    near = mindist_znorm_pow_batch(
        paa_lower,
        paa_upper,
        rect_lows,
        rect_highs,
        mu_range,
        sigma_range,
        seg_len,
        p,
    )
    far: Optional[np.ndarray] = None
    if include_far:
        far = maxdist_znorm_pow_batch(
            paa_lower,
            paa_upper,
            rect_lows,
            rect_highs,
            mu_range,
            sigma_range,
            seg_len,
            p,
        )
    return near, far


def mdmwp_pow(min_pair_pow: float, r: int) -> float:
    """``MDMWP-distance ** p`` (Definition 2): ``r * d(q_m, s_m)^p``.

    ``min_pair_pow`` is the p-th power of the minimum matching-window-pair
    distance; ``r`` is the guaranteed number of complete disjoint windows
    in any candidate, ``floor((Len(Q) + 1) / omega) - 1``.
    """
    if r < 1:
        raise QueryError(f"MDMWP window count r must be >= 1, got {r}")
    return r * min_pair_pow


def min_disjoint_windows(
    query_length: int, omega: int, data_stride: Optional[int] = None
) -> int:
    """Definition 2's ``r``, generalized to a data-window stride ``J``.

    The minimum number of *class* windows (disjoint, length ``omega``,
    pairwise ``omega`` apart) contained in any data subsequence of
    length ``Len(Q)``, regardless of alignment.  The worst alignment
    leaves ``J - 1`` samples before the first grid window, giving
    ``floor((Len(Q) - omega - J + 1) / omega) + 1``; with ``J == omega``
    (DualMatch) this is the paper's ``floor((Len(Q) + 1) / omega) - 1``.
    """
    if omega < 1:
        raise QueryError(f"omega must be >= 1, got {omega}")
    stride = omega if data_stride is None else data_stride
    if stride < 1:
        raise QueryError(f"data_stride must be >= 1, got {stride}")
    return (query_length - omega - stride + 1) // omega + 1


def mseq_distance_pow(frontier_pows: Iterable[float]) -> float:
    """``MSEQ-distance ** p`` (Definition 6).

    ``frontier_pows`` holds, for every priority queue of one equivalence
    class, the p-th power of the relevant term: the popped pair's own
    bound for the queue being consumed, and the current top-entry
    distances for the sibling queues.  The combination is a plain sum in
    power space.
    """
    total = 0.0
    for value in frontier_pows:
        if math.isinf(value):
            return _INF
        total += value
    return total


def root(value_pow: float, p: float = 2.0) -> float:
    """Convert a p-th-power distance back to distance space."""
    if math.isinf(value_pow):
        return _INF
    if value_pow < 0.0:
        # Guard against tiny negative values from float cancellation.
        value_pow = 0.0
    return value_pow ** (1.0 / p)
