"""The lower-bound chain of Lemma 1 plus the paper's pruning distances.

For a query envelope ``E(Q)`` and a data (sub)sequence ``S``::

    DTW_rho(Q, S)  >=  LB_Keogh(E(Q), S)  >=  LB_PAA(P(E(Q)), P(S))
                   >=  MINDIST(P(E(Q)), MBR containing P(S))

On top of this chain the paper defines two composite bounds:

* the **MDMWP-distance** (Definition 2, from HLMJ [12]):
  ``(r * LB_PAA(q_m, s_m)^p)^(1/p)`` where ``(q_m, s_m)`` is the
  minimum-distance matching window pair and ``r`` the guaranteed number
  of disjoint windows inside any candidate;
* the **MSEQ-distance** (Definition 6): the p-norm combination of the
  per-priority-queue frontier distances within one equivalence class.

Everything here works in p-th-power space (``*_pow`` functions); rooted
convenience wrappers are provided for the public API.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.envelope import Envelope
from repro.exceptions import QueryError

_INF = math.inf


def _gaps_outside_envelope(
    lower: np.ndarray, upper: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """Per-element distance from ``values`` to the band ``[lower, upper]``."""
    above = values - upper
    below = lower - values
    gaps = np.maximum(above, below)
    np.maximum(gaps, 0.0, out=gaps)
    return gaps


def _pow_sum(gaps: np.ndarray, p: float) -> float:
    # Exact dispatch on the user-supplied norm order, not a computed float.
    if p == 2.0:  # repro: ignore[RS003]
        return float(np.dot(gaps, gaps))
    return float(np.sum(gaps**p))


def lb_keogh_pow(envelope: Envelope, values: Sequence[float], p: float = 2.0) -> float:
    """``LB_Keogh(E(Q), S) ** p`` — the tight envelope bound of [13]."""
    array = np.asarray(values, dtype=np.float64)
    if array.size != len(envelope):
        raise QueryError(
            f"LB_Keogh needs equal lengths: envelope {len(envelope)}, "
            f"sequence {array.size}"
        )
    gaps = _gaps_outside_envelope(envelope.lower, envelope.upper, array)
    return _pow_sum(gaps, p)


def lb_keogh(envelope: Envelope, values: Sequence[float], p: float = 2.0) -> float:
    """Rooted ``LB_Keogh`` (the paper's Section 2 definition)."""
    return lb_keogh_pow(envelope, values, p) ** (1.0 / p)


def lb_paa_pow(
    paa_lower: np.ndarray,
    paa_upper: np.ndarray,
    paa_values: np.ndarray,
    seg_len: int,
    p: float = 2.0,
) -> float:
    """``LB_PAA(P(E(Q)), P(S)) ** p`` (Zhu & Shasha [24]).

    Each PAA dimension summarises ``seg_len`` raw values; the power-mean
    inequality gives ``seg_len * |mean gap|^p <= sum |gap_i|^p`` per
    segment, hence the ``seg_len`` scaling keeps the bound below
    ``LB_Keogh ** p``.
    """
    if seg_len < 1:
        raise QueryError(f"seg_len must be >= 1, got {seg_len}")
    gaps = _gaps_outside_envelope(paa_lower, paa_upper, paa_values)
    return seg_len * _pow_sum(gaps, p)


def lb_paa(
    paa_lower: np.ndarray,
    paa_upper: np.ndarray,
    paa_values: np.ndarray,
    seg_len: int,
    p: float = 2.0,
) -> float:
    """Rooted ``LB_PAA``."""
    return lb_paa_pow(paa_lower, paa_upper, paa_values, seg_len, p) ** (1.0 / p)


def mindist_pow(
    paa_lower: np.ndarray,
    paa_upper: np.ndarray,
    rect_low: np.ndarray,
    rect_high: np.ndarray,
    seg_len: int,
    p: float = 2.0,
) -> float:
    """``MINDIST(P(E(q)), MBR) ** p`` — Definition 6's MBR case.

    Per dimension this is the gap between the envelope interval
    ``[L_j, U_j]`` and the MBR interval ``[lo_j, hi_j]`` (zero when they
    overlap); it lower-bounds ``lb_paa_pow`` for every point inside the
    MBR, which makes best-first R*-tree descent admissible.
    """
    gap_above = rect_low - paa_upper  # MBR entirely above the envelope
    gap_below = paa_lower - rect_high  # MBR entirely below the envelope
    gaps = np.maximum(gap_above, gap_below)
    np.maximum(gaps, 0.0, out=gaps)
    return seg_len * _pow_sum(gaps, p)


def maxdist_pow(
    paa_lower: np.ndarray,
    paa_upper: np.ndarray,
    rect_low: np.ndarray,
    rect_high: np.ndarray,
    seg_len: int,
    p: float = 2.0,
) -> float:
    """``MAXDIST(P(E(q)), MBR) ** p`` — upper bound over points in the MBR.

    The per-dimension gap to the envelope band is convex in the point
    coordinate, so its maximum over ``[lo_j, hi_j]`` is attained at an
    endpoint.  RU-COST's pivot selection (Section 4) uses
    ``[MINDIST, MAXDIST]`` ranges to approximate leaf-entry densities
    without expanding nodes.
    """
    gaps_at_low = _gaps_outside_envelope(paa_lower, paa_upper, rect_low)
    gaps_at_high = _gaps_outside_envelope(paa_lower, paa_upper, rect_high)
    gaps = np.maximum(gaps_at_low, gaps_at_high)
    return seg_len * _pow_sum(gaps, p)


def mdmwp_pow(min_pair_pow: float, r: int) -> float:
    """``MDMWP-distance ** p`` (Definition 2): ``r * d(q_m, s_m)^p``.

    ``min_pair_pow`` is the p-th power of the minimum matching-window-pair
    distance; ``r`` is the guaranteed number of complete disjoint windows
    in any candidate, ``floor((Len(Q) + 1) / omega) - 1``.
    """
    if r < 1:
        raise QueryError(f"MDMWP window count r must be >= 1, got {r}")
    return r * min_pair_pow


def min_disjoint_windows(
    query_length: int, omega: int, data_stride: Optional[int] = None
) -> int:
    """Definition 2's ``r``, generalized to a data-window stride ``J``.

    The minimum number of *class* windows (disjoint, length ``omega``,
    pairwise ``omega`` apart) contained in any data subsequence of
    length ``Len(Q)``, regardless of alignment.  The worst alignment
    leaves ``J - 1`` samples before the first grid window, giving
    ``floor((Len(Q) - omega - J + 1) / omega) + 1``; with ``J == omega``
    (DualMatch) this is the paper's ``floor((Len(Q) + 1) / omega) - 1``.
    """
    if omega < 1:
        raise QueryError(f"omega must be >= 1, got {omega}")
    stride = omega if data_stride is None else data_stride
    if stride < 1:
        raise QueryError(f"data_stride must be >= 1, got {stride}")
    return (query_length - omega - stride + 1) // omega + 1


def mseq_distance_pow(frontier_pows: Iterable[float]) -> float:
    """``MSEQ-distance ** p`` (Definition 6).

    ``frontier_pows`` holds, for every priority queue of one equivalence
    class, the p-th power of the relevant term: the popped pair's own
    bound for the queue being consumed, and the current top-entry
    distances for the sibling queues.  The combination is a plain sum in
    power space.
    """
    total = 0.0
    for value in frontier_pows:
        if math.isinf(value):
            return _INF
        total += value
    return total


def root(value_pow: float, p: float = 2.0) -> float:
    """Convert a p-th-power distance back to distance space."""
    if math.isinf(value_pow):
        return _INF
    if value_pow < 0.0:
        # Guard against tiny negative values from float cancellation.
        value_pow = 0.0
    return value_pow ** (1.0 / p)
