"""Command-line entry point: ``python -m repro``.

Subcommands
-----------
``demo``
    Build a small database and run one ranked query with every engine,
    printing matches and the paper's three cost metrics.
``inventory``
    Print the Table 2-style dataset inventory at a chosen scale.
``scrub``
    Load a saved database directory, verify every on-disk checksum and
    every in-memory page checksum plus the structural invariants, and
    exit 0 (clean) or 1 (damage found, detailed on stderr).
``recover``
    Roll a durable ingest root (``checkpoint/`` + ``wal.log``) forward
    to its last committed state: replay committed WAL batches over the
    checkpoint, discard the torn tail, verify integrity, and optionally
    checkpoint.  Exit 0 (recovered clean) or 1.
``lint``
    Run the repo-specific static invariant checker
    (:mod:`repro.analysis`) over the source tree and exit 0 (clean) or
    1 (contract violations found).
``chaos``
    Run the chaos / metamorphic exactness harness
    (:mod:`repro.chaos`): seeded random databases and queries under
    randomized fault schedules x budgets x deadlines x cancellation,
    cross-checked against brute-force ground truth.  Exit 0 (every
    invariant held) or 1 (a violation, printed with its replay seed).
``bench``
    Run the perf-regression suites (:mod:`repro.bench.perf`): seeded
    kernel micro-benchmarks (with built-in exactness checks against the
    scalar oracles) and/or deterministic end-to-end engine counters,
    gated against the committed ``benchmarks/baseline.json``.  Exit 0
    (gate passed), 1 (regression / exactness failure), or 2 (usage
    error, e.g. a missing baseline).
``trace``
    Run one fully traced query (:mod:`repro.obs`) against a synthetic
    dataset and write the span tree in Chrome ``chrome://tracing`` /
    Perfetto format.  Also cross-checks the span-level page accounting
    against the paper's NUM_IO counter and fails (exit 1) on mismatch.
``profile``
    Run one traced query and print the per-query profile: the hottest
    span names ranked by self time, plus the observability counters.
``serve``
    Run the concurrent multi-tenant query service
    (:mod:`repro.serve`): JSON-lines over a local TCP socket, QoS
    classes mapped onto an aging priority queue, per-tenant token
    buckets and circuit breakers, graceful degradation under load
    (see ``docs/service.md``).  ``--self-test N`` instead drives N
    concurrent socket clients against the single-query oracle and
    exits 0/1 (the CI smoke mode).

These are convenience smoke tests; the real experiment drivers live in
``benchmarks/`` (one pytest-benchmark module per figure).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional, Sequence, cast

import numpy as np


def _demo(args: argparse.Namespace) -> int:
    from repro import SubsequenceDatabase
    from repro.data import load_dataset

    dataset = load_dataset(args.dataset, size=args.size, seed=args.seed)
    db = SubsequenceDatabase(omega=args.omega, features=4)
    db.insert(0, dataset.values)
    db.build()
    print(f"{dataset.name}: {dataset.size:,} points indexed")
    print(db.describe())

    rng = np.random.default_rng(args.seed + 1)
    start = int(rng.integers(0, dataset.size - args.query_length))
    query = dataset.values[start : start + args.query_length].copy()
    print(f"\nquery: subsequence [{start}:{start + args.query_length})")

    print(
        f"\n{'engine':>10s} {'top-1 dist':>12s} {'candidates':>12s} "
        f"{'pages':>8s} {'ms':>8s}"
    )
    for method in ("seqscan", "hlmj", "hlmj-wg", "ru", "ru-cost"):
        db.reset_cache()
        result = db.search(
            query, k=args.k, method=method, deferred=method != "seqscan"
        )
        stats = result.stats
        print(
            f"{method:>10s} {result.matches[0].distance:>12.4f} "
            f"{stats.candidates:>12,d} {stats.page_accesses:>8,d} "
            f"{stats.wall_time_s * 1000:>8.1f}"
        )
    return 0


def _inventory(args: argparse.Namespace) -> int:
    from repro.data import DATASET_NAMES, load_dataset
    from repro.data.datasets import scaled_size

    print(f"{'Data set':>10s} {'Size':>12s} {'Markers':>30s}")
    for name in DATASET_NAMES:
        dataset = load_dataset(
            name, size=scaled_size(name, args.scale), seed=args.seed
        )
        info = dataset.describe()
        print(
            f"{name:>10s} {info['size']:>12,d} {str(info['markers']):>30s}"
        )
    return 0


def _scrub(args: argparse.Namespace) -> int:
    from repro.exceptions import ReproError
    from repro.storage.persistence import load_database

    try:
        db = load_database(args.directory, backend=args.backend)
    except FileNotFoundError as error:
        print(f"scrub: {error}", file=sys.stderr)
        return 1
    except ReproError as error:
        print(
            f"scrub: {args.directory}: FAILED on-disk verification: "
            f"{type(error).__name__}: {error}",
            file=sys.stderr,
        )
        return 1
    report = db.verify_integrity()
    if report["ok"]:
        print(
            f"scrub: {args.directory}: OK "
            f"({report['pages']} pages, all checksums verified)"
        )
        return 0
    for page_id in report["corrupt_pages"]:
        print(
            f"scrub: page {page_id} failed checksum verification",
            file=sys.stderr,
        )
    for message in report["tree_errors"] + report["counter_errors"]:
        print(f"scrub: {message}", file=sys.stderr)
    print(f"scrub: {args.directory}: FAILED", file=sys.stderr)
    return 1


def _chaos(args: argparse.Namespace) -> int:
    from repro.chaos import (
        run_chaos,
        run_ingest_chaos,
        run_serve_chaos,
        run_shard_chaos,
    )

    progress = None
    if args.verbose:
        progress = lambda message: print(f"chaos: {message}")  # noqa: E731
    runners = {
        "search": (run_chaos,),
        "ingest": (run_ingest_chaos,),
        "serve": (run_serve_chaos,),
        "shard": (run_shard_chaos,),
        "all": (run_chaos, run_ingest_chaos, run_serve_chaos, run_shard_chaos),
    }[args.suite]
    exit_code = 0
    for runner in runners:
        report = runner(
            seed=args.seed, iterations=args.iterations, progress=progress
        )
        print(
            f"chaos: suite={runner.__name__} seed={report.seed} "
            f"iterations={report.iterations} checks={report.checks} "
            f"partials={report.partials}"
        )
        for scenario in sorted(report.scenario_counts):
            print(
                f"chaos:   {scenario}: {report.scenario_counts[scenario]} "
                f"iterations"
            )
        if report.ok:
            print("chaos: OK — every invariant held")
            continue
        for failure in report.failures:
            print(f"chaos: VIOLATION at {failure}", file=sys.stderr)
        print(
            f"chaos: FAILED — {len(report.failures)} violations "
            f"(replay with --seed {report.seed})",
            file=sys.stderr,
        )
        exit_code = 1
    return exit_code


def _recover(args: argparse.Namespace) -> int:
    from repro.exceptions import ReproError
    from repro.ingest import recover_database

    try:
        db, report = recover_database(
            args.root, psm=args.psm, backend=args.backend
        )
    except FileNotFoundError as error:
        print(f"recover: {error}", file=sys.stderr)
        return 1
    except ReproError as error:
        print(
            f"recover: {args.root}: FAILED: "
            f"{type(error).__name__}: {error}",
            file=sys.stderr,
        )
        return 1
    print(
        f"recover: {args.root}: checkpoint_lsn={report.checkpoint_lsn} "
        f"replayed {report.replayed_records} record(s) in "
        f"{report.replayed_batches} committed batch(es), "
        f"torn_bytes_discarded={report.torn_bytes_discarded}, "
        f"effective_lsn={report.effective_lsn}"
    )
    integrity = db.verify_integrity()
    if not integrity["ok"]:
        for message in (
            [f"page {p} failed checksum" for p in integrity["corrupt_pages"]]
            + integrity["tree_errors"]
            + integrity["counter_errors"]
        ):
            print(f"recover: {message}", file=sys.stderr)
        print(f"recover: {args.root}: FAILED integrity", file=sys.stderr)
        return 1
    if args.checkpoint:
        watermark = db.checkpoint()
        print(f"recover: checkpointed at LSN {watermark}, WAL truncated")
    print(f"recover: {args.root}: OK")
    return 0


def _bench(args: argparse.Namespace) -> int:
    import os

    from repro.bench import perf

    suites = (
        ("kernels", "engines", "tracing", "ingest", "serve", "shard",
         "storage")
        if args.suite == "all"
        else (args.suite,)
    )
    report = perf.run_suites(suites, seed=args.seed, quick=args.quick)
    print(perf.format_report(report))

    exact_failures = [
        name
        for name, bench in report["suites"].get("kernels", {}).items()
        if not bench["exact"]
    ]
    for name in exact_failures:
        print(
            f"bench: kernels/{name}: vectorized kernel does not match the "
            f"scalar oracle",
            file=sys.stderr,
        )
    ingest_recovery = report["suites"].get("ingest", {}).get("recovery", {})
    for name, record in ingest_recovery.items():
        if not record.get("exact", False):
            exact_failures.append(f"ingest/{name}")
            print(
                f"bench: ingest/{name}: recovered database is not "
                f"byte-identical to the live database",
                file=sys.stderr,
            )

    if args.json:
        perf.write_report(report, args.json)
        print(f"bench: wrote {args.json}")
    if args.update_baseline:
        perf.write_report(report, args.baseline)
        print(f"bench: wrote baseline {args.baseline}")
        return 1 if exact_failures else 0

    if not os.path.exists(args.baseline):
        print(
            f"bench: baseline {args.baseline} not found — run with "
            f"--update-baseline to create it",
            file=sys.stderr,
        )
        return 2
    try:
        baseline = perf.load_report(args.baseline)
    except (ValueError, OSError) as error:
        print(f"bench: {error}", file=sys.stderr)
        return 2
    regressions = perf.compare(report, baseline)
    if not regressions and not exact_failures:
        print(f"bench: OK — no regression against {args.baseline}")
        return 0
    for regression in regressions:
        print(f"bench: REGRESSION {regression}", file=sys.stderr)
    print(
        f"bench: FAILED — {len(regressions) + len(exact_failures)} "
        f"problem(s) against {args.baseline}",
        file=sys.stderr,
    )
    return 1


def _serve_database(args: argparse.Namespace) -> "tuple[object, object]":
    from repro import SubsequenceDatabase
    from repro.data import load_dataset

    dataset = load_dataset(args.dataset, size=args.size, seed=args.seed)
    shards = getattr(args, "shards", 0)
    if shards and shards > 1:
        from repro.shard import ShardedDatabase

        # Split the dataset into one sequence per shard so partitioning
        # has something to distribute; each chunk must still be long
        # enough to hold sliding windows (and the self-test queries).
        chunk = len(dataset.values) // shards
        minimum = max(2 * args.omega - 1, args.query_length)
        if chunk < minimum:
            raise SystemExit(
                f"serve: --shards {shards} leaves {chunk} values per "
                f"sequence; need at least {minimum} (grow --size)"
            )
        sdb = ShardedDatabase(
            num_shards=shards,
            policy=args.shard_policy,
            executor="thread",
            omega=args.omega,
            features=4,
        )
        for index in range(shards):
            hi = (index + 1) * chunk if index < shards - 1 else None
            sdb.insert(index, dataset.values[index * chunk : hi])
        sdb.build(psm=args.psm)
        return sdb, dataset
    db = SubsequenceDatabase(omega=args.omega, features=4)
    db.insert(0, dataset.values)
    db.build(psm=args.psm)
    return db, dataset


def _serve_self_test(
    args: argparse.Namespace, db: "object", dataset: "object"
) -> int:
    """Concurrent mixed-engine socket clients vs the single-query oracle."""
    import threading

    import numpy as np  # noqa: F811 — keep function self-contained

    from repro.serve import ServeClient, ServiceConfig, SocketServer
    from repro.serve.service import QueryService

    clients = max(1, args.self_test)
    service = QueryService(
        db,
        ServiceConfig(
            workers=args.workers, queue_capacity=args.queue_capacity
        ),
    )
    server = SocketServer(service, host=args.host, port=args.port)
    server.start()
    host, port = server.address
    print(f"serve: self-test with {clients} concurrent clients on "
          f"{host}:{port}")
    rng = np.random.default_rng(args.seed + 1)
    methods = ("seqscan", "hlmj", "ru", "ru-cost")
    jobs = []
    for index in range(clients):
        start = int(rng.integers(0, args.size - args.query_length))
        query = dataset.values[start : start + args.query_length].tolist()
        jobs.append((index, methods[index % len(methods)], query))
    failures: list = []
    barrier = threading.Barrier(clients)

    def run_client(index: int, method: str, query: "list[float]") -> None:
        try:
            with ServeClient(host, port) as client:
                barrier.wait(timeout=30)
                out = client.request(
                    {
                        "kind": "knn",
                        "query": query,
                        "k": args.k,
                        "method": method,
                        "id": index,
                    }
                )
                gold = db.search(query, k=args.k, method=method)
                got = [tuple(row[:2]) for row in out["matches"]]
                want = [(m.sid, m.start) for m in gold.matches]
                if out["status"] != "exact" or got != want:
                    failures.append(
                        f"client {index} ({method}): got {got!r}, "
                        f"want {want!r}"
                    )
        except Exception as error:  # noqa: BLE001 — reported below
            failures.append(f"client {index} ({method}): {error!r}")

    threads = [
        threading.Thread(target=run_client, args=job, daemon=True)
        for job in jobs
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    alive = [thread for thread in threads if thread.is_alive()]
    server.close()
    service.shutdown()
    for failure in failures:
        print(f"serve: FAILED {failure}", file=sys.stderr)
    if alive:
        print(f"serve: FAILED {len(alive)} client(s) hung", file=sys.stderr)
        return 1
    if failures:
        return 1
    stats = service.stats
    print(
        f"serve: self-test OK — {stats.completed} completed, "
        f"{stats.rejected} rejected, peak inflight {stats.peak_inflight}; "
        f"clean shutdown"
    )
    return 0


def _serve(args: argparse.Namespace) -> int:
    db, dataset = _serve_database(args)
    if args.self_test:
        return _serve_self_test(args, db, dataset)

    from repro.serve import ServiceConfig, SocketServer
    from repro.serve.service import QueryService

    service = QueryService(
        db,
        ServiceConfig(
            workers=args.workers, queue_capacity=args.queue_capacity
        ),
    )
    server = SocketServer(service, host=args.host, port=args.port)
    server.start()
    host, port = server.address
    print(
        f"serve: listening on {host}:{port} "
        f"({args.workers} workers, queue {args.queue_capacity}; "
        f"JSON-lines protocol, see docs/service.md); Ctrl-C to stop"
    )
    try:
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:
        print("serve: shutting down")
    finally:
        server.close()
        service.shutdown()
    return 0


def _traced_query(args: argparse.Namespace) -> "object":
    """Build a dataset-backed database and run one traced query."""
    from repro import SubsequenceDatabase
    from repro.data import load_dataset
    from repro.obs import Tracer

    dataset = load_dataset(args.dataset, size=args.size, seed=args.seed)
    tracer = Tracer(enabled=True)
    db = SubsequenceDatabase(omega=args.omega, features=4, tracer=tracer)
    db.insert(0, dataset.values)
    db.build(psm=args.engine == "psm")
    rng = np.random.default_rng(args.seed + 1)
    start = int(rng.integers(0, dataset.size - args.query_length))
    query = dataset.values[start : start + args.query_length].copy()
    db.reset_cache()
    return db.search(
        query,
        k=args.k,
        method=args.engine,
        deferred=args.deferred,
    )


def _trace(args: argparse.Namespace) -> int:
    import json

    result = _traced_query(args)
    profile = result.profile  # type: ignore[attr-defined]
    if profile is None:
        print("trace: query returned no profile", file=sys.stderr)
        return 1
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(profile.to_chrome_trace(), handle)
    fetch_spans = profile.span_count("buffer.fetch")
    num_io = profile.stats.page_accesses
    total_spans = sum(
        count for count, _ in profile.span_totals().values()
    )
    print(
        f"trace: {args.engine} on {args.dataset}: "
        f"{total_spans} spans -> {args.out}"
    )
    print(
        f"trace: buffer.fetch spans={fetch_spans} NUM_IO={num_io} "
        f"({'conformant' if fetch_spans == num_io else 'MISMATCH'})"
    )
    if fetch_spans != num_io:
        print(
            "trace: span-level page accounting does not match the "
            "NUM_IO counter",
            file=sys.stderr,
        )
        return 1
    return 0


def _profile(args: argparse.Namespace) -> int:
    result = _traced_query(args)
    profile = result.profile  # type: ignore[attr-defined]
    if profile is None:
        print("profile: query returned no profile", file=sys.stderr)
        return 1
    print(
        f"profile: {args.engine} on {args.dataset} "
        f"(k={args.k}, NUM_IO={profile.stats.page_accesses}, "
        f"candidates={profile.stats.candidates})"
    )
    print(f"{'span':>24s} {'count':>8s} {'total ms':>10s} {'self ms':>10s}")
    for name, count, total_s, self_s in profile.top_spans(args.top):
        print(
            f"{name:>24s} {count:>8,d} {total_s * 1000:>10.2f} "
            f"{self_s * 1000:>10.2f}"
        )
    counters = profile.metrics.counters
    if counters:
        print("counters:")
        for name in sorted(counters):
            print(f"  {name} = {counters[name]:,g}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ranked subsequence matching via ranked union "
        "(SIGMOD 2011 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run one query with every engine")
    demo.add_argument("--dataset", default="WALK", help="dataset name")
    demo.add_argument("--size", type=int, default=40_000)
    demo.add_argument("--omega", type=int, default=32)
    demo.add_argument("--query-length", type=int, default=128)
    demo.add_argument("--k", type=int, default=5)
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(func=_demo)

    inventory = sub.add_parser(
        "inventory", help="print the Table 2 dataset inventory"
    )
    inventory.add_argument("--scale", type=float, default=1.0 / 256.0)
    inventory.add_argument("--seed", type=int, default=0)
    inventory.set_defaults(func=_inventory)

    scrub = sub.add_parser(
        "scrub", help="verify a saved database directory end to end"
    )
    scrub.add_argument("directory", help="database directory to verify")
    scrub.add_argument(
        "--backend",
        choices=("file", "mmap"),
        default=None,
        help="storage backend to load under (default: file)",
    )
    scrub.set_defaults(func=_scrub)

    recover = sub.add_parser(
        "recover",
        help="roll a durable root (checkpoint + wal.log) forward to its "
        "last committed state",
    )
    recover.add_argument(
        "root", help="durable root directory (holds checkpoint/ and wal.log)"
    )
    recover.add_argument(
        "--psm",
        action="store_true",
        help="also reattach PSM's sliding index",
    )
    recover.add_argument(
        "--checkpoint",
        action="store_true",
        help="checkpoint after replay (truncates the WAL)",
    )
    recover.add_argument(
        "--backend",
        choices=("file", "mmap"),
        default=None,
        help="storage backend for the recovered database (default: file)",
    )
    recover.set_defaults(func=_recover)

    chaos = sub.add_parser(
        "chaos", help="run the chaos / metamorphic exactness harness"
    )
    chaos.add_argument(
        "--suite",
        choices=("search", "ingest", "serve", "shard", "all"),
        default="search",
        help="search = query-path invariants (default); ingest = "
        "crash-recovery exactness at seeded WAL/checkpoint crash points; "
        "serve = many-client service campaign (overload, faults, "
        "cancellation, deadlines) against the single-query oracle; "
        "shard = sharded execution (worker loss, per-shard faults, "
        "mid-merge deadlines) against the single-process oracle",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--iterations", type=int, default=100)
    chaos.add_argument(
        "--verbose", action="store_true", help="print per-iteration progress"
    )
    chaos.set_defaults(func=_chaos)

    bench = sub.add_parser(
        "bench", help="run the perf-regression benchmark suites"
    )
    bench.add_argument(
        "--suite",
        choices=(
            "kernels",
            "engines",
            "tracing",
            "ingest",
            "serve",
            "shard",
            "storage",
            "all",
        ),
        default="all",
        help="which suite(s) to run (default: all)",
    )
    bench.add_argument(
        "--json", metavar="PATH", help="write the JSON report to PATH"
    )
    bench.add_argument(
        "--baseline",
        default="benchmarks/baseline.json",
        help="baseline report to gate against",
    )
    bench.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the current run as the new baseline instead of gating",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="fewer timing repeats (CI smoke); sizes and ratios unchanged",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.set_defaults(func=_bench)

    serve = sub.add_parser(
        "serve",
        help="run the concurrent query service (JSON-lines over TCP)",
    )
    serve.add_argument("--dataset", default="WALK", help="dataset name")
    serve.add_argument("--size", type=int, default=40_000)
    serve.add_argument("--omega", type=int, default=32)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="0 = ephemeral (printed)"
    )
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--queue-capacity", type=int, default=64)
    serve.add_argument("--query-length", type=int, default=128)
    serve.add_argument("--k", type=int, default=5)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--psm", action="store_true", help="also build the PSM index"
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="serve a sharded database: split the dataset into N "
        "sequences, partition them across N shards, and answer queries "
        "through the parallel ranked-union merge (0 = unsharded)",
    )
    serve.add_argument(
        "--shard-policy",
        choices=("hash", "range"),
        default="hash",
        help="shard partitioning policy (with --shards)",
    )
    serve.add_argument(
        "--self-test",
        type=int,
        default=0,
        metavar="N",
        help="run N concurrent socket clients against the oracle, then "
        "shut down cleanly and exit 0/1 (CI smoke mode)",
    )
    serve.set_defaults(func=_serve)

    engines = ("seqscan", "hlmj", "hlmj-wg", "psm", "ru", "ru-cost")

    def add_query_options(command: argparse.ArgumentParser) -> None:
        command.add_argument("--size", type=int, default=40_000)
        command.add_argument("--omega", type=int, default=32)
        command.add_argument("--query-length", type=int, default=128)
        command.add_argument("--k", type=int, default=5)
        command.add_argument("--seed", type=int, default=0)
        command.add_argument(
            "--deferred",
            action="store_true",
            help="use the deferred retrieval variant",
        )

    trace = sub.add_parser(
        "trace", help="run one traced query, export a Chrome trace"
    )
    trace.add_argument("dataset", help="dataset name (e.g. WALK)")
    trace.add_argument("engine", choices=engines, help="engine to trace")
    trace.add_argument(
        "--out",
        default="trace.json",
        help="Chrome trace output path (default: trace.json)",
    )
    add_query_options(trace)
    trace.set_defaults(func=_trace)

    profile = sub.add_parser(
        "profile", help="run one traced query, print the hottest spans"
    )
    profile.add_argument(
        "dataset", nargs="?", default="WALK", help="dataset name"
    )
    profile.add_argument(
        "engine",
        nargs="?",
        choices=engines,
        default="ru-cost",
        help="engine to profile (default: ru-cost)",
    )
    profile.add_argument(
        "--top", type=int, default=10, help="span names to show"
    )
    add_query_options(profile)
    profile.set_defaults(func=_profile)

    from repro.analysis.cli import add_lint_parser

    add_lint_parser(sub)

    args = parser.parse_args(argv)
    handler = cast(Callable[[argparse.Namespace], int], args.func)
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
