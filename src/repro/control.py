"""Deadline- and budget-aware query execution control.

The paper's headline metric is the number of page accesses (``NUM_IO``),
which makes per-query I/O a natural *resource budget*: this module turns
that observation into a cooperative execution-control plane shared by
every engine.

* :class:`QueryBudget` caps page accesses and candidate evaluations.
* :class:`Deadline` bounds wall-clock time against an injectable
  monotonic :class:`Clock` (so tests and the chaos harness never sleep
  for real).
* :class:`CancellationToken` lets a caller abort a running query from
  outside the engine loop.
* :class:`ExecutionControl` bundles the three for one query run and
  exposes :meth:`~ExecutionControl.checkpoint`, which engines call at
  every traversal-loop boundary (lint rule RS007 enforces this).  When a
  limit trips, the checkpoint raises
  :class:`~repro.exceptions.ExecutionInterrupted`; the engine template
  converts that into a :class:`~repro.engines.base.PartialResult`
  carrying the best-k-so-far plus an **exactness certificate** — the
  tightest known lower bound on any unexamined candidate — so an early
  exit never silently pretends to be exact (the anytime analogue of the
  paper's Section 3 no-false-dismissal contract).
* :class:`AdmissionController` provides simple service-side admission
  control (max concurrent + max queued queries) in front of
  :meth:`repro.api.SubsequenceDatabase.search`.

Checkpoints are *cooperative*: limits are checked between units of
engine work, so a budget may be overshot by at most one loop iteration.
Every limit object is per-query; construct fresh ones per search.
"""

from __future__ import annotations

import bisect
import math
import threading
from dataclasses import dataclass
from types import TracebackType
from typing import Callable, List, Optional, Tuple, Type

from repro.analysis.concurrency import (
    guarded_by,
    requires_lock,
    shared_across_queries,
    single_query,
)
from repro.core.clock import MONOTONIC_CLOCK, Clock, FakeClock, MonotonicClock
from repro.core.metrics import QueryStats
from repro.exceptions import (
    AdmissionRejectedError,
    ConfigurationError,
    ExecutionInterrupted,
    UsageError,
)
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "CancellationToken",
    "Clock",
    "Deadline",
    "ExecutionControl",
    "FakeClock",
    "MONOTONIC_CLOCK",
    "MonotonicClock",
    "QueryBudget",
    "REASON_CANCELLED",
    "REASON_CANDIDATE_BUDGET",
    "REASON_DEADLINE",
    "REASON_PAGE_BUDGET",
    "certificate_from_pow",
]

#: Interrupt reasons carried by :class:`ExecutionInterrupted` and
#: :class:`~repro.engines.base.PartialResult`.
REASON_CANCELLED = "cancelled"
REASON_DEADLINE = "deadline"
REASON_PAGE_BUDGET = "budget:pages"
REASON_CANDIDATE_BUDGET = "budget:candidates"


@dataclass(frozen=True)
class QueryBudget:
    """Resource caps for one query; ``None`` means unlimited.

    Attributes
    ----------
    max_page_accesses:
        Physical page reads the query may issue (the paper's ``NUM_IO``).
    max_candidates:
        Candidate subsequences whose full values may be retrieved and
        evaluated (the paper's "number of candidates").
    """

    max_page_accesses: Optional[int] = None
    max_candidates: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("max_page_accesses", "max_candidates"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ConfigurationError(
                    f"{name} must be >= 0 or None, got {value}"
                )

    @property
    def unlimited(self) -> bool:
        """True when no cap is configured (checkpoints never trip)."""
        return self.max_page_accesses is None and self.max_candidates is None


class Deadline:
    """A wall-clock deadline measured on an injectable monotonic clock."""

    def __init__(
        self, expires_at: float, clock: Optional[Clock] = None
    ) -> None:
        self._clock = clock if clock is not None else MONOTONIC_CLOCK
        self.expires_at = float(expires_at)

    @classmethod
    def after(
        cls, seconds: float, clock: Optional[Clock] = None
    ) -> "Deadline":
        """A deadline ``seconds`` from now on ``clock``."""
        if seconds < 0:
            raise ConfigurationError(
                f"deadline seconds must be >= 0, got {seconds}"
            )
        active = clock if clock is not None else MONOTONIC_CLOCK
        return cls(active.monotonic() + seconds, clock=active)

    @property
    def expired(self) -> bool:
        return self._clock.monotonic() >= self.expires_at

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self.expires_at - self._clock.monotonic())


class CancellationToken:
    """Caller-side cancellation for one in-flight query.

    ``cancel()`` is thread-safe and idempotent.  ``cancel_after_checks``
    is a deterministic test/chaos facility: the token cancels itself
    after that many :meth:`is_cancelled` polls, simulating an impatient
    caller without involving threads or timers.
    """

    def __init__(self, cancel_after_checks: Optional[int] = None) -> None:
        if cancel_after_checks is not None and cancel_after_checks < 0:
            raise ConfigurationError(
                f"cancel_after_checks must be >= 0, got "
                f"{cancel_after_checks}"
            )
        self._cancelled = False
        self._remaining_checks = cancel_after_checks
        self.checks = 0

    def cancel(self) -> None:
        """Request cancellation (takes effect at the next checkpoint)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested (no side effects)."""
        return self._cancelled

    def is_cancelled(self) -> bool:
        """Poll the token (counts the poll for ``cancel_after_checks``)."""
        self.checks += 1
        if self._remaining_checks is not None and not self._cancelled:
            self._remaining_checks -= 1
            if self._remaining_checks < 0:
                self._cancelled = True
        return self._cancelled


@single_query
class ExecutionControl:
    """Runtime budget/deadline/cancellation state for one query.

    Engines bind a local name at the top of their traversal
    (``budget = evaluator.control``) and call
    ``budget.checkpoint(frontier_pow)`` at every loop boundary, passing
    the current index-level lower bound (p-th power) on any candidate
    not yet examined.  The latest reported frontier is what the engine
    template turns into the exactness certificate when a limit trips.

    A default-constructed instance has no limits: its checkpoints never
    raise, so unbudgeted queries behave exactly as before this layer
    existed (and cost only a few attribute reads per loop iteration).
    """

    def __init__(
        self,
        budget: Optional[QueryBudget] = None,
        deadline: Optional[Deadline] = None,
        token: Optional[CancellationToken] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.budget = budget
        self.deadline = deadline
        self.token = token
        #: The query's tracer.  Defaults to the shared disabled tracer;
        #: when enabled, limited checkpoints surface as span events so
        #: budget/deadline pressure lands on the same timeline as the
        #: page and verify spans.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Latest engine-reported lower bound (p-th power) on unexamined
        #: candidates.  Starts at 0.0 — the only universally sound value
        #: before the engine has reported anything.
        self.frontier_pow = 0.0
        #: Checkpoints executed (diagnostics; surfaced via QueryStats).
        self.checkpoints = 0
        self._stats: Optional[QueryStats] = None
        self._page_count: Optional[Callable[[], int]] = None

    def bind(self, stats: QueryStats, page_count: Callable[[], int]) -> None:
        """Attach the per-query counters the budget is enforced against.

        Called once by the engine template; ``page_count`` must return
        the physical reads issued *by this query so far*.
        """
        self._stats = stats
        self._page_count = page_count

    @property
    def limited(self) -> bool:
        """Whether any limit is configured at all."""
        return (
            self.token is not None
            or self.deadline is not None
            or (self.budget is not None and not self.budget.unlimited)
        )

    def checkpoint(self, frontier_pow: Optional[float] = None) -> None:
        """Cooperative limit check at an engine loop boundary.

        Raises :class:`~repro.exceptions.ExecutionInterrupted` when the
        token is cancelled, the deadline has passed, or a budget cap is
        exceeded.  ``frontier_pow``, when given, records the engine's
        current lower bound on unexamined candidates; passing ``None``
        keeps the previous value (valid because engine frontiers are
        non-decreasing over a run).
        """
        self.checkpoints += 1
        if frontier_pow is not None:
            self.frontier_pow = frontier_pow
        if self.tracer.enabled and self.limited:
            self.tracer.event(
                "control.checkpoint", frontier_pow=self.frontier_pow
            )
        if self.token is not None and self.token.is_cancelled():
            self._interrupt(REASON_CANCELLED)
        if self.deadline is not None and self.deadline.expired:
            self._interrupt(REASON_DEADLINE)
        budget = self.budget
        if budget is None:
            return
        if (
            budget.max_page_accesses is not None
            and self._page_count is not None
            and self._page_count() > budget.max_page_accesses
        ):
            self._interrupt(REASON_PAGE_BUDGET)
        if (
            budget.max_candidates is not None
            and self._stats is not None
            and self._stats.candidates > budget.max_candidates
        ):
            self._interrupt(REASON_CANDIDATE_BUDGET)

    def _interrupt(self, reason: str) -> None:
        """Record the trip on the trace timeline, then raise."""
        if self.tracer.enabled:
            self.tracer.event("control.interrupted", reason=reason)
        raise ExecutionInterrupted(reason)


@dataclass
class AdmissionStats:
    """Counters for one :class:`AdmissionController`."""

    admitted: int = 0
    rejected: int = 0
    #: Admissions that had to wait in the queue first.
    queued: int = 0
    peak_active: int = 0


class _AdmissionTicket:
    """Context manager releasing one admitted slot on exit."""

    def __init__(self, controller: "AdmissionController") -> None:
        self._controller = controller
        self._released = False

    def __enter__(self) -> "_AdmissionTicket":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.release()

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release()


@shared_across_queries
@guarded_by("_condition", "_active", "_waiting", "_waiters", "_next_seq", "stats")
class AdmissionController:
    """Bounded-concurrency admission control for query execution.

    At most ``max_concurrent`` queries run at once; up to ``max_queued``
    more may wait (``queue_timeout_s`` bounds the wait).  Anything
    beyond that is rejected immediately with
    :class:`~repro.exceptions.AdmissionRejectedError` — fail-fast
    back-pressure instead of unbounded queueing, which is what the
    ROADMAP's heavy-traffic scenario needs from a front door.

    Wakeup order is **deterministic**: waiters are granted slots in
    ``(priority, arrival)`` order, so equal-priority waiters are FIFO
    and a lower ``priority`` value always wins the next free slot.
    (Pre-serve versions woke an *arbitrary* ``Condition`` waiter, which
    silently undid any queue-level ordering upstream — the aging
    guarantees of :mod:`repro.serve.queue` rely on this fix holding
    end to end.)  A newcomer never barges past existing waiters, even
    when a slot is momentarily free between a release and the head
    waiter's wakeup.

    Thread safety: the slot counters, waiter list, and stats are
    guarded by ``_condition`` (a :class:`threading.Condition` doubling
    as the mutex); ``admit``/``_release`` block on it, and the
    ``active`` / ``waiting`` properties take it so monitors never see
    torn state.
    """

    def __init__(
        self,
        max_concurrent: int,
        max_queued: int = 0,
        queue_timeout_s: Optional[float] = None,
    ) -> None:
        if max_concurrent < 1:
            raise ConfigurationError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        if max_queued < 0:
            raise ConfigurationError(
                f"max_queued must be >= 0, got {max_queued}"
            )
        if queue_timeout_s is not None and queue_timeout_s < 0:
            raise ConfigurationError(
                f"queue_timeout_s must be >= 0, got {queue_timeout_s}"
            )
        self.max_concurrent = max_concurrent
        self.max_queued = max_queued
        self.queue_timeout_s = queue_timeout_s
        self.stats = AdmissionStats()
        self._condition = threading.Condition()
        self._active = 0
        self._waiting = 0
        #: Sorted (priority, seq) entries, head = next waiter to admit.
        self._waiters: List[Tuple[int, int]] = []
        self._next_seq = 0

    @property
    def active(self) -> int:
        """Queries currently admitted and running."""
        with self._condition:
            return self._active

    @property
    def waiting(self) -> int:
        """Queries currently waiting in the admission queue."""
        with self._condition:
            return self._waiting

    def admit(self, priority: int = 0) -> _AdmissionTicket:
        """Acquire one execution slot (blocking in the queue if allowed).

        ``priority`` orders the wait queue: lower values are admitted
        first, ties break FIFO by arrival.  The default of 0 gives pure
        FIFO semantics for callers that never pass a priority.

        Returns a context manager releasing the slot; raises
        :class:`~repro.exceptions.AdmissionRejectedError` when both the
        concurrency and queue limits are full, or the queue wait times
        out.
        """
        with self._condition:
            if self._active < self.max_concurrent and not self._waiters:
                self._admit_locked()
                return _AdmissionTicket(self)
            if self._waiting >= self.max_queued:
                self.stats.rejected += 1
                raise AdmissionRejectedError(
                    f"admission rejected: {self._active} active and "
                    f"{self._waiting} queued queries (limits: "
                    f"{self.max_concurrent} concurrent, "
                    f"{self.max_queued} queued)"
                )
            entry = (priority, self._next_seq)
            self._next_seq += 1
            bisect.insort(self._waiters, entry)
            self._waiting += 1
            self.stats.queued += 1
            try:
                granted = self._condition.wait_for(
                    lambda: (
                        self._active < self.max_concurrent
                        and self._waiters[0] == entry
                    ),
                    timeout=self.queue_timeout_s,
                )
            finally:
                self._waiting -= 1
                self._waiters.remove(entry)
                # The head may have changed (we left the queue either
                # admitted or timed out); let the new head re-evaluate.
                self._condition.notify_all()
            if not granted:
                self.stats.rejected += 1
                raise AdmissionRejectedError(
                    f"admission queue wait exceeded "
                    f"{self.queue_timeout_s} s"
                )
            self._admit_locked()
            return _AdmissionTicket(self)

    @requires_lock("_condition")
    def _admit_locked(self) -> None:
        self._active += 1
        self.stats.admitted += 1
        self.stats.peak_active = max(self.stats.peak_active, self._active)

    def _release(self) -> None:
        with self._condition:
            if self._active <= 0:
                raise UsageError(
                    "AdmissionController released more slots than admitted"
                )
            self._active -= 1
            # notify_all, not notify: only the (priority, arrival) head
            # may take the slot, and an arbitrary single wakeup could
            # land on a non-head waiter that just goes back to sleep.
            self._condition.notify_all()


def certificate_from_pow(certificate_pow: float, p: float) -> float:
    """Root a p-th-power certificate into distance space.

    ``inf`` stays ``inf`` (nothing unexamined remained — the partial
    result is in fact exact) and negative numerical noise clamps to 0.
    """
    if math.isinf(certificate_pow):
        return math.inf
    if certificate_pow <= 0.0:
        return 0.0
    return certificate_pow ** (1.0 / p)
