"""Experiment 6 / Figure 18: PSM(D) versus RU-COST(D).

The paper runs this comparison at ``Len(Q) = 256`` only — PSM "cannot
finish with reasonable times" beyond that, since its join signatures
need prohibitive numbers of bloom filter calls once the query spans
more than four disjoint windows.  Scaled here: ``Len(Q) = 128`` with
``omega = 32`` — the same 4-way join — on a small UCR instance (PSM's
FRM-style index stores *every sliding window*).

PSM runs under a join-state pop budget with graceful stop; queries that
exhaust it are reported as **lower bounds** (marked in the output) —
mirroring how the paper itself reports PSM's missing cells.  RU-COST(D)
always runs exactly.

Paper shapes asserted:
* RU-COST(D) decisively outperforms PSM(D) on both query sets (the
  paper reports 62.5x / 135.7x; budget-capped PSM cells only understate
  the true gap);
* PSM's bloom calls count in the tens of thousands and RU-COST makes
  none.
"""

from benchmarks.conftest import FEATURES, record
from repro.bench import EngineSpec, Harness
from repro.bench.harness import modeled_wall_time_s
from repro.core.metrics import QueryStats
from repro.engines.base import EngineConfig
from repro.engines.psm import PsmEngine

PSM_DATA_SIZE = 12_000
PSM_LEN_Q = 128  # 4 disjoint windows of omega=32, as in the paper
K_RANGE_PSM = (5, 25)
NUM_PSM_QUERIES = 2
PSM_POP_BUDGET = 400_000


def make_harness():
    return Harness(
        "UCR",
        size=PSM_DATA_SIZE,
        omega=32,
        features=FEATURES,
        seed=0,
        psm=True,
    )


def run_psm(harness, queries, k):
    """PSM(D) under the pop budget; returns (averages dict, capped?)."""
    engine = PsmEngine(
        harness.db._sliding_index,  # noqa: SLF001 — bench-level wiring
        max_heap_pops=PSM_POP_BUDGET,
        budget_action="stop",
    )
    harness.db.reset_cache()
    totals = QueryStats()
    modeled = 0.0
    capped = False
    for query in queries:
        rho = max(1, int(0.05 * len(query)))
        config = EngineConfig(k=k, rho=rho, deferred=True)
        result = engine.search(query, config)
        totals.merge(result.stats)
        modeled += modeled_wall_time_s(result.stats, len(query), rho)
        capped = capped or bool(result.stats.budget_exhausted)
    count = len(queries)
    return {
        "modeled_time_s": modeled / count,
        "bloom_calls": totals.bloom_calls / count,
        "heap_pops": totals.heap_pops / count,
        "candidates": totals.candidates / count,
    }, capped


def run_sweep(harness, queries):
    rows = {}
    for k in K_RANGE_PSM:
        psm_metrics, capped = run_psm(harness, queries, k)
        ru = harness.run(
            EngineSpec("ru-cost", deferred=True), queries, k=k
        )
        rows[k] = {
            "psm": psm_metrics,
            "psm_capped": capped,
            "ru_modeled": ru.modeled_time_s,
            "ru_bloom": ru.metric("bloom_calls"),
        }
    return rows


def format_rows(label, rows):
    lines = [
        f"Fig 18 — {label}: PSM(D) vs RU-COST(D), Len(Q)={PSM_LEN_Q} "
        f"(4-way join), {PSM_DATA_SIZE:,} points",
        f"{'k':>4s} {'PSM(D) s':>14s} {'RU-COST(D) s':>14s} "
        f"{'speedup':>9s} {'PSM bloom':>12s} {'PSM pops':>12s}",
    ]
    for k, row in rows.items():
        prefix = ">=" if row["psm_capped"] else "  "
        psm_time = row["psm"]["modeled_time_s"]
        speedup = psm_time / max(row["ru_modeled"], 1e-9)
        lines.append(
            f"{k:>4d} {prefix}{psm_time:>12.2f} {row['ru_modeled']:>14.4f} "
            f"{prefix}{speedup:>6.1f}x {row['psm']['bloom_calls']:>12,.0f} "
            f"{row['psm']['heap_pops']:>12,.0f}"
        )
    if any(row["psm_capped"] for row in rows.values()):
        lines.append(
            "('>=' rows hit the state-pop budget: PSM values are lower "
            "bounds, as in the paper's did-not-finish cells)"
        )
    return "\n".join(lines)


def test_fig18_psm_comparison(benchmark):
    harness = make_harness()
    regular = harness.regular_queries(
        length=PSM_LEN_Q, count=NUM_PSM_QUERIES
    )
    dense = harness.dense_queries(length=PSM_LEN_Q, count=NUM_PSM_QUERIES)

    def run_both():
        return (
            run_sweep(harness, regular),
            run_sweep(harness, dense),
        )

    rows_regular, rows_dense = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    record(
        "fig18_psm_comparison",
        format_rows("UCR-REGULAR (panel a)", rows_regular)
        + "\n\n"
        + format_rows("UCR-DENSE (panel b)", rows_dense),
    )

    for rows in (rows_regular, rows_dense):
        for k, row in rows.items():
            # RU-COST wins decisively (capped PSM rows understate it).
            assert row["psm"]["modeled_time_s"] > 3 * row["ru_modeled"], (
                f"PSM should lose decisively at k={k}"
            )
            assert row["psm"]["bloom_calls"] > 1_000
            assert row["ru_bloom"] == 0
