"""Ablation: GeneralMatch data-window stride (the [16] generalization).

Not a paper figure — the paper fixes the DualMatch configuration
(``J = omega``) — but its framework section presents ranked union as a
generalized scheme, and the stride is the natural knob: smaller ``J``
indexes more (overlapping) data windows in exchange for more equivalence
classes and potentially tighter bounds.  This bench sweeps
``J in {omega/4, omega/2, omega}`` on UCR-REGULAR.
"""

from benchmarks.conftest import (
    BENCH_SIZES,
    FEATURES,
    K_DEFAULT,
    LEN_Q,
    NUM_QUERIES,
    OMEGA,
    record,
)
from repro.bench import EngineSpec, format_series_table
from repro.bench.harness import Harness
from repro.data.queries import regular_queries

STRIDES = (OMEGA // 4, OMEGA // 2, OMEGA)


class StrideHarness(Harness):
    """Harness whose index uses a non-default data stride."""

    def __init__(self, stride: int):
        from repro.api import SubsequenceDatabase
        from repro.data.datasets import load_dataset

        self.dataset = load_dataset(
            "UCR", size=BENCH_SIZES["UCR"] // 2, seed=0
        )
        self.omega = OMEGA
        self.features = FEATURES
        self.seed = 0
        self.db = SubsequenceDatabase(
            omega=OMEGA,
            features=FEATURES,
            buffer_fraction=0.05,
            data_stride=stride,
        )
        self.db.insert(0, self.dataset.values)
        self.db.build()


def run_sweep():
    rows = {}
    queries = None
    for stride in STRIDES:
        harness = StrideHarness(stride)
        if queries is None:
            queries = regular_queries(
                harness.dataset.values,
                LEN_Q,
                NUM_QUERIES,
                seed=17,
                omega=OMEGA,
                features=FEATURES,
            )
        rows[f"J={stride}"] = harness.run_lineup(
            (
                EngineSpec("ru", deferred=True),
                EngineSpec("ru-cost", deferred=True),
            ),
            queries,
            k=K_DEFAULT,
        )
    return rows


def test_ablation_generalmatch_stride(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    record(
        "ablation_generalmatch",
        format_series_table(
            "Ablation — GeneralMatch data stride (UCR-REGULAR): candidates",
            "stride",
            rows,
            "candidates",
        )
        + "\n"
        + format_series_table(
            "Ablation — GeneralMatch data stride: page accesses",
            "stride",
            rows,
            "page_accesses",
        )
        + "\n"
        + format_series_table(
            "Ablation — GeneralMatch data stride: modeled time (s)",
            "stride",
            rows,
            "modeled_time_s",
        ),
    )
    # Exactness is covered by tests; here just require the sweep ran
    # at every stride with sane outputs.
    for label, results in rows.items():
        for result in results.values():
            assert result.candidates > 0, label
