"""Experiment 4 / Figure 16: effect of the query length.

Sweeps ``Len(Q)`` over the (scaled) Table 3 range {256, 384, 512} ->
here {128, 192, 256} on the shared UCR index.

Paper shapes asserted:
* SeqScan's candidates are (nearly) unchanged by query length, but its
  wall time grows with it (longer DTW computations);
* for the index engines, longer queries produce (weakly) more
  candidates — the relative window size shrinks (window size effect);
* RU-COST(D) stays ahead of HLMJ(D) at every length.
"""

from benchmarks.conftest import K_DEFAULT, NUM_QUERIES, record
from repro.bench import format_series_table
from repro.bench.harness import DEFERRED_LINEUP

LENGTH_RANGE = (128, 192, 256)


def run_sweep(harness):
    rows = {}
    for length in LENGTH_RANGE:
        queries = harness.regular_queries(length=length, count=NUM_QUERIES)
        rows[length] = harness.run_lineup(
            DEFERRED_LINEUP, queries, k=K_DEFAULT
        )
    return rows


def test_fig16_query_length(benchmark, ucr_harness):
    rows = benchmark.pedantic(
        lambda: run_sweep(ucr_harness), rounds=1, iterations=1
    )
    blocks = [
        format_series_table(
            "Fig 16(a) — candidates by query length (UCR-REGULAR)",
            "Len(Q)",
            rows,
            "candidates",
        ),
        format_series_table(
            "Fig 16(b) — page accesses by query length",
            "Len(Q)",
            rows,
            "page_accesses",
        ),
        format_series_table(
            "Fig 16(c) — wall clock time (modeled, s) by query length",
            "Len(Q)",
            rows,
            "modeled_time_s",
        ),
    ]
    record("fig16_query_length", "\n\n".join(blocks))

    lengths = list(rows)
    # SeqScan: candidate count changes only with the offset count
    # (slightly), but modeled time grows with Len(Q).
    assert (
        rows[lengths[-1]]["SeqScan"].modeled_time_s
        > rows[lengths[0]]["SeqScan"].modeled_time_s
    )
    spread = [rows[L]["SeqScan"].candidates for L in lengths]
    assert max(spread) / min(spread) < 1.01
    # RU-COST(D) ahead of HLMJ(D) everywhere.
    for length in lengths:
        assert (
            rows[length]["RU-COST(D)"].candidates
            <= rows[length]["HLMJ(D)"].candidates
        )
