"""Experiment 2 / Figure 12: UCR with the UCR-DENSE query set.

UCR-DENSE queries mix windows from dense and sparse PAA regions, which
triggers HLMJ's MDMWP-scheduling problem (Figure 2): its global queue
drowns in dense-region pairs while the bound-raising sparse pairs wait.

Paper shapes asserted:
* the HLMJ(D) / RU-COST(D) candidate gap is far larger than on
  UCR-REGULAR (the paper reports up to 50.4x on candidates);
* the ranked-union engines stay within an order of magnitude of their
  REGULAR cost, i.e. they "completely eliminate" the pathology.
"""

from benchmarks.conftest import LEN_Q, NUM_QUERIES, record
from repro.bench import format_series_table, format_speedups
from repro.bench.figures import chart_from_results
from repro.bench.harness import DEFERRED_LINEUP

K_RANGE_DENSE = (5, 25, 50)


def run_sweep(harness):
    queries = harness.dense_queries(length=LEN_Q, count=NUM_QUERIES)
    return {
        k: harness.run_lineup(DEFERRED_LINEUP, queries, k=k)
        for k in K_RANGE_DENSE
    }


def test_fig12_dense_queries(benchmark, ucr_harness):
    rows = benchmark.pedantic(
        lambda: run_sweep(ucr_harness), rounds=1, iterations=1
    )
    blocks = [
        format_series_table(
            "Fig 12(a) — number of candidates (UCR-DENSE)",
            "k",
            rows,
            "candidates",
        ),
        format_series_table(
            "Fig 12(b) — number of page accesses", "k", rows, "page_accesses"
        ),
        format_series_table(
            "Fig 12(c) — wall clock time (modeled, s)",
            "k",
            rows,
            "modeled_time_s",
        ),
        format_speedups(
            rows, "candidates", "RU-COST(D)", ["HLMJ(D)", "RU(D)"]
        ),
        format_speedups(
            rows, "modeled_time_s", "RU-COST(D)", ["SeqScan", "HLMJ(D)"]
        ),
        chart_from_results(
            "Fig 12(a) chart — candidates by k (UCR-DENSE)",
            rows,
            "candidates",
        ),
    ]
    record("fig12_dense_queries", "\n\n".join(blocks))

    for k, results in rows.items():
        hlmj = results["HLMJ(D)"]
        ru_cost = results["RU-COST(D)"]
        # The MDMWP pathology: a large candidate blow-up for HLMJ.
        assert hlmj.candidates > 5 * ru_cost.candidates, (
            f"expected HLMJ candidate blow-up at k={k}: "
            f"{hlmj.candidates} vs {ru_cost.candidates}"
        )
        assert hlmj.page_accesses > 5 * ru_cost.page_accesses
        # Ranked union keeps the query cheap in absolute terms too.
        assert ru_cost.modeled_time_s < hlmj.modeled_time_s / 2
