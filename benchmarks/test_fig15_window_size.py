"""Experiment 4 / Figure 15: effect of the window size.

Sweeps ``omega`` over the (scaled) Table 3 range {32, 64, 128} -> here
{16, 32, 64}, building one index per window size on the same UCR data.

Paper shapes asserted (the *window size effect* of [16, 17]):
* SeqScan is flat in all three measures — it ignores the index;
* for the index engines, larger windows yield (weakly) fewer
  candidates;
* RU-COST(D) keeps the fewest candidates at every window size.
"""

from benchmarks.conftest import (
    BENCH_SIZES,
    FEATURES,
    K_DEFAULT,
    LEN_Q,
    NUM_QUERIES,
    record,
)
from repro.bench import Harness, format_series_table
from repro.bench.harness import DEFERRED_LINEUP

OMEGA_RANGE = (16, 32, 64)


def run_sweep():
    rows = {}
    queries = None
    for omega in OMEGA_RANGE:
        harness = Harness(
            "UCR",
            size=BENCH_SIZES["UCR"] // 2,  # one index per omega: keep builds snappy
            omega=omega,
            features=FEATURES,
            seed=0,
        )
        if queries is None:
            # One shared query set across all window sizes — otherwise
            # the density screening (which depends on omega) would
            # change the workload between sweep points and confound the
            # window size effect.
            queries = harness.regular_queries(length=LEN_Q, count=NUM_QUERIES)
        rows[omega] = harness.run_lineup(DEFERRED_LINEUP, queries, k=K_DEFAULT)
    return rows


def test_fig15_window_size(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    blocks = [
        format_series_table(
            "Fig 15(a) — candidates by window size (UCR-REGULAR)",
            "omega",
            rows,
            "candidates",
        ),
        format_series_table(
            "Fig 15(b) — page accesses by window size",
            "omega",
            rows,
            "page_accesses",
        ),
        format_series_table(
            "Fig 15(c) — wall clock time (modeled, s) by window size",
            "omega",
            rows,
            "modeled_time_s",
        ),
    ]
    record("fig15_window_size", "\n\n".join(blocks))

    omegas = list(rows)
    # SeqScan flat regardless of omega.
    seq_candidates = [rows[o]["SeqScan"].candidates for o in omegas]
    assert max(seq_candidates) == min(seq_candidates)
    # Window size effect: the largest window needs no more candidates
    # than the smallest for every index engine (small slack for query
    # sets whose hardest query sits near a window boundary).
    for label in ("HLMJ(D)", "RU(D)", "RU-COST(D)"):
        assert rows[omegas[-1]][label].candidates <= 1.25 * (
            rows[omegas[0]][label].candidates
        ), label
    # RU-COST(D) leads everywhere (few-percent slack: at the largest
    # window both engines converge on the same small candidate set).
    for omega in omegas:
        assert rows[omega]["RU-COST(D)"].candidates <= 1.1 * (
            rows[omega]["HLMJ(D)"].candidates
        )
