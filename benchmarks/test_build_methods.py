"""Index construction: STR bulk load versus one-at-a-time R* insertion.

Not a paper figure — an engineering ablation for the substrate.  The
paper builds its indexes offline; this bench documents the build-cost
trade-off and verifies both builds give comparable query performance.
"""

import time

from benchmarks.conftest import FEATURES, OMEGA, record
from repro.bench import EngineSpec, Harness
from repro.data import load_dataset
from repro.index.builder import build_index
from repro.storage.buffer import BufferPool
from repro.storage.pager import Pager
from repro.storage.sequences import SequenceStore

BUILD_SIZE = 48_000


def build_once(bulk: bool):
    dataset = load_dataset("UCR", size=BUILD_SIZE, seed=0)
    pager = Pager()
    buffer = BufferPool(pager, capacity_pages=64)
    store = SequenceStore(pager, buffer)
    store.add_sequence(0, dataset.values)
    started = time.perf_counter()
    index = build_index(store, omega=OMEGA, features=FEATURES, bulk=bulk)
    elapsed = time.perf_counter() - started
    index.tree.check_invariants()
    return elapsed, index


def test_build_bulk_vs_insert(benchmark):
    def run():
        bulk_time, bulk_index = build_once(bulk=True)
        insert_time, insert_index = build_once(bulk=False)
        return bulk_time, bulk_index, insert_time, insert_index

    bulk_time, bulk_index, insert_time, insert_index = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    lines = [
        "Index build — STR bulk load vs R* insertion "
        f"({BUILD_SIZE:,} points, omega={OMEGA})",
        f"{'method':>12s} {'seconds':>10s} {'nodes':>8s} {'height':>8s}",
        f"{'STR bulk':>12s} {bulk_time:>10.3f} "
        f"{bulk_index.tree.node_count():>8d} {bulk_index.tree.height:>8d}",
        f"{'R* insert':>12s} {insert_time:>10.3f} "
        f"{insert_index.tree.node_count():>8d} "
        f"{insert_index.tree.height:>8d}",
    ]
    record("build_methods", "\n".join(lines))
    assert bulk_time < insert_time
    assert len(bulk_index.tree) == len(insert_index.tree)
