"""Ablation bench for RU-COST's design choices (Section 4).

The paper fixes alpha=1, beta=0, h=blocking factor, and introduces
selective expansion; this bench sweeps each choice on the UCR-DENSE
workload, where scheduling matters most:

* lookahead ``h``: 4, 16, blocking factor, plus the adaptive variant
  the paper mentions as future work;
* selective expansion on/off (off = exact densities everywhere);
* cost weights (alpha, beta): the paper's I/O-only default versus a
  CPU-only and a mixed weighting;
* scheduling strategy family: cost-aware versus max-delta (RU's
  default), global-min (HLMJ's order inside ranked union), and
  round-robin.
"""

from benchmarks.conftest import K_DEFAULT, LEN_Q, NUM_QUERIES, record
from repro.bench import EngineSpec, format_series_table
from repro.engines.cost_density import CostDensityConfig


def lookahead_specs():
    return (
        EngineSpec(
            "ru-cost",
            deferred=True,
            cost_config=CostDensityConfig(lookahead_h=4),
            label_override="h=4",
        ),
        EngineSpec(
            "ru-cost",
            deferred=True,
            cost_config=CostDensityConfig(lookahead_h=16),
            label_override="h=16",
        ),
        EngineSpec(
            "ru-cost",
            deferred=True,
            cost_config=CostDensityConfig(),
            label_override="h=blocking",
        ),
        EngineSpec(
            "ru-cost",
            deferred=True,
            cost_config=CostDensityConfig(adaptive_h=True),
            label_override="h=adaptive",
        ),
    )


def expansion_specs():
    return (
        EngineSpec(
            "ru-cost",
            deferred=True,
            cost_config=CostDensityConfig(selective_expansion=True),
            label_override="selective",
        ),
        EngineSpec(
            "ru-cost",
            deferred=True,
            cost_config=CostDensityConfig(selective_expansion=False),
            label_override="exhaustive",
        ),
    )


def weight_specs():
    return (
        EngineSpec(
            "ru-cost",
            deferred=True,
            cost_config=CostDensityConfig(alpha=1.0, beta=0.0),
            label_override="a1,b0 (paper)",
        ),
        EngineSpec(
            "ru-cost",
            deferred=True,
            cost_config=CostDensityConfig(alpha=0.0, beta=1.0),
            label_override="a0,b1",
        ),
        EngineSpec(
            "ru-cost",
            deferred=True,
            cost_config=CostDensityConfig(alpha=1.0, beta=0.1),
            label_override="a1,b0.1",
        ),
    )


def strategy_specs():
    return (
        EngineSpec("ru-cost", deferred=True),
        EngineSpec("ru", deferred=True),
        EngineSpec("hlmj", deferred=True),
        EngineSpec("hlmj-wg", deferred=True),
    )


def test_ablation_lookahead(benchmark, ucr_harness):
    queries = ucr_harness.dense_queries(length=LEN_Q, count=NUM_QUERIES)
    rows = benchmark.pedantic(
        lambda: {
            K_DEFAULT: ucr_harness.run_lineup(
                lookahead_specs(), queries, k=K_DEFAULT
            )
        },
        rounds=1,
        iterations=1,
    )
    record(
        "ablation_rucost",
        format_series_table(
            "Ablation — lookahead h (UCR-DENSE): candidates",
            "k",
            rows,
            "candidates",
        )
        + "\n"
        + format_series_table(
            "Ablation — lookahead h: page accesses",
            "k",
            rows,
            "page_accesses",
        ),
    )
    results = rows[K_DEFAULT]
    # All variants stay exact and in the same cost regime; the paper's
    # blocking-factor default must not be worse than the tiny h=4.
    assert (
        results["h=blocking"].candidates <= results["h=4"].candidates * 1.25
    )


def test_ablation_selective_expansion(benchmark, ucr_harness):
    queries = ucr_harness.dense_queries(length=LEN_Q, count=NUM_QUERIES)
    rows = benchmark.pedantic(
        lambda: {
            K_DEFAULT: ucr_harness.run_lineup(
                expansion_specs(), queries, k=K_DEFAULT
            )
        },
        rounds=1,
        iterations=1,
    )
    record(
        "ablation_rucost",
        format_series_table(
            "Ablation — selective vs exhaustive expansion (UCR-DENSE)",
            "k",
            rows,
            "page_accesses",
        ),
    )
    results = rows[K_DEFAULT]
    # Both modes are exact and land in the same candidate regime.  At
    # reproduction scale (~3k candidates, shallow queues) exhaustive
    # density probing is cheap, so selective expansion cannot show its
    # savings here — see EXPERIMENTS.md; we bound the overhead instead.
    assert results["selective"].candidates <= 1.3 * (
        results["exhaustive"].candidates
    )
    assert results["selective"].page_accesses <= 3.0 * (
        results["exhaustive"].page_accesses
    )


def test_ablation_cost_weights(benchmark, ucr_harness):
    queries = ucr_harness.dense_queries(length=LEN_Q, count=NUM_QUERIES)
    rows = benchmark.pedantic(
        lambda: {
            K_DEFAULT: ucr_harness.run_lineup(
                weight_specs(), queries, k=K_DEFAULT
            )
        },
        rounds=1,
        iterations=1,
    )
    record(
        "ablation_rucost",
        format_series_table(
            "Ablation — cost weights alpha/beta (UCR-DENSE)",
            "k",
            rows,
            "modeled_time_s",
        ),
    )
    # All weightings remain exact; this is a reporting-only ablation.
    assert len(rows[K_DEFAULT]) == 3


def test_ablation_strategy_family(benchmark, ucr_harness):
    queries = ucr_harness.dense_queries(length=LEN_Q, count=NUM_QUERIES)
    rows = benchmark.pedantic(
        lambda: {
            K_DEFAULT: ucr_harness.run_lineup(
                strategy_specs(), queries, k=K_DEFAULT
            )
        },
        rounds=1,
        iterations=1,
    )
    record(
        "ablation_rucost",
        format_series_table(
            "Ablation — scheduling family (UCR-DENSE): candidates",
            "k",
            rows,
            "candidates",
        ),
    )
    results = rows[K_DEFAULT]
    # The ranked-union engines must crush HLMJ's global-queue order on
    # the dense workload (the paper's central claim).
    assert results["RU-COST(D)"].candidates < (
        results["HLMJ(D)"].candidates / 3
    )
