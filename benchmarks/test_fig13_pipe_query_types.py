"""Experiment 2 / Figure 13: PIPE query types (BEND, VALVE, TEE).

PIPE's carrier signal is strongly periodic, so nearly every window maps
into a few dense PAA clusters; the injected BEND/VALVE/TEE patterns map
into sparse regions.  Queries cut around pattern instances therefore
mix both — "eventually mapped into dense and sparse regions in a mixed
way" — and HLMJ's global queue degrades drastically while RU-COST(D)
stays cheap (the paper reports improvements up to 980.9x vs HLMJ(D)
and 78.3x vs RU(D)).

One wall-clock panel per pattern family, sweeping ``k``.
"""

import pytest

from benchmarks.conftest import LEN_Q, record
from repro.bench import format_series_table, format_speedups
from repro.bench.harness import DEFERRED_LINEUP

K_RANGE_PIPE = (5, 25)
FAMILIES = ("BEND", "VALVE", "TEE")


def run_family(harness, family):
    queries = harness.pattern_queries(family, length=LEN_Q, count=2)
    return {
        k: harness.run_lineup(DEFERRED_LINEUP, queries, k=k)
        for k in K_RANGE_PIPE
    }


@pytest.mark.parametrize("family", FAMILIES)
def test_fig13_pipe_query_type(benchmark, pipe_harness, family):
    rows = benchmark.pedantic(
        lambda: run_family(pipe_harness, family), rounds=1, iterations=1
    )
    panel = "abc"[FAMILIES.index(family)]
    blocks = [
        format_series_table(
            f"Fig 13({panel}) — PIPE-{family}: wall clock time (modeled, s)",
            "k",
            rows,
            "modeled_time_s",
        ),
        format_series_table(
            f"Fig 13({panel}) — PIPE-{family}: candidates",
            "k",
            rows,
            "candidates",
        ),
        format_speedups(
            rows, "modeled_time_s", "RU-COST(D)", ["HLMJ(D)", "RU(D)"]
        ),
    ]
    record("fig13_pipe_query_types", "\n\n".join(blocks))

    for k, results in rows.items():
        # The ranked-union family must beat HLMJ decisively on the
        # pathological PIPE workloads.
        assert results["RU-COST(D)"].candidates < (
            results["HLMJ(D)"].candidates / 2
        ), f"PIPE-{family} k={k}"
        assert results["RU-COST(D)"].modeled_time_s < (
            results["HLMJ(D)"].modeled_time_s
        )
