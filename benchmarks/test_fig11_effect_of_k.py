"""Experiment 1 / Figure 11: effect of ``k`` on UCR with UCR-REGULAR.

Regenerates all three panels — (a) candidates, (b) page accesses,
(c) wall clock time — for SeqScan, HLMJ, RU, RU-COST, each baseline in
deferred "(D)" and non-deferred form, sweeping ``k`` over Table 3's
range.

Paper shapes asserted:
* every deferred variant needs at most the page accesses of its
  non-deferred twin (the deferred retrieval mechanism's purpose);
* RU-COST(D) has the fewest candidates of all engines at every ``k``
  (Fig. 11a: "RU-COST consistently reduces the number of candidates");
* RU-COST(D) beats SeqScan and HLMJ(D) on modeled wall time.
"""

from benchmarks.conftest import (
    K_RANGE,
    LEN_Q,
    NUM_QUERIES,
    record,
)
from repro.bench import format_series_table, format_speedups
from repro.bench.figures import chart_from_results
from repro.bench.harness import FULL_LINEUP


def run_sweep(harness):
    queries = harness.regular_queries(length=LEN_Q, count=NUM_QUERIES)
    return {
        k: harness.run_lineup(FULL_LINEUP, queries, k=k) for k in K_RANGE
    }


def test_fig11_effect_of_k(benchmark, ucr_harness):
    rows = benchmark.pedantic(
        lambda: run_sweep(ucr_harness), rounds=1, iterations=1
    )
    blocks = []
    for metric, title in (
        ("candidates", "Fig 11(a) — number of candidates (UCR-REGULAR)"),
        ("page_accesses", "Fig 11(b) — number of page accesses"),
        ("modeled_time_s", "Fig 11(c) — wall clock time (modeled, s)"),
        ("wall_time_s", "Fig 11(c') — raw Python wall time (s)"),
    ):
        blocks.append(format_series_table(title, "k", rows, metric))
    blocks.append(
        format_speedups(
            rows,
            "modeled_time_s",
            "RU-COST(D)",
            ["SeqScan", "HLMJ(D)", "RU(D)"],
        )
    )
    blocks.append(
        chart_from_results(
            "Fig 11(c) chart — modeled wall time by k", rows, "modeled_time_s"
        )
    )
    record("fig11_effect_of_k", "\n\n".join(blocks))

    for k, results in rows.items():
        # Deferred never costs more pages than non-deferred.
        for base in ("HLMJ", "RU", "RU-COST"):
            assert (
                results[f"{base}(D)"].page_accesses
                <= results[base].page_accesses + 1
            ), f"deferred {base} regressed at k={k}"
        # Among deferred engines RU-COST retrieves the fewest
        # candidates (deferral delays threshold tightening identically
        # for all of them, so the comparison is apples-to-apples).
        assert (
            results["RU-COST(D)"].candidates
            <= results["HLMJ(D)"].candidates
        )
        assert results["RU-COST(D)"].candidates <= 1.2 * (
            results["RU(D)"].candidates
        )
        # Slack: at tiny k both engines sit within a few percent.
        assert results["RU-COST"].candidates <= 1.15 * (
            results["RU"].candidates
        )
        # Index methods beat the scan by a wide margin on candidates.
        assert results["RU-COST(D)"].candidates < (
            results["SeqScan"].candidates / 10
        )
    # Headline ordering at the default k.
    defaults = rows[25]
    assert (
        defaults["RU-COST(D)"].modeled_time_s
        < defaults["SeqScan"].modeled_time_s
    )
    assert (
        defaults["RU-COST(D)"].modeled_time_s
        < defaults["HLMJ(D)"].modeled_time_s
    )
