"""Table 2: the dataset inventory.

Regenerates the dataset table at the benchmark scale and checks that
the stand-ins preserve the properties the experiments rely on: the
relative size ordering of Table 2, PIPE's injected pattern families,
and UCR's dense/sparse window mixture.
"""

import numpy as np

from benchmarks.conftest import BENCH_SIZES, record
from repro.data import load_dataset
from repro.data.datasets import PAPER_SIZES
from repro.data.queries import window_densities


def build_inventory():
    rows = []
    for name, size in BENCH_SIZES.items():
        dataset = load_dataset(name, size=size, seed=0)
        rows.append(dataset.describe())
    return rows


def test_table2_datasets(benchmark):
    rows = benchmark.pedantic(build_inventory, rounds=1, iterations=1)
    header = (
        f"{'Data set':>10s} {'Size':>12s} {'Paper size':>12s} "
        f"{'Scale':>8s} {'Markers':>20s}"
    )
    lines = ["Table 2 — data sets used (scaled)", header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['name']:>10s} {row['size']:>12,d} "
            f"{row['paper_size']:>12,d} {row['scale']:>8.4f} "
            f"{str(row['markers']):>20s}"
        )
    record("table2_datasets", "\n".join(lines))

    # Relative ordering of Table 2 preserved: PIPE > UCR > MUSIC >
    # WALK > STOCK at paper scale; the bench sizes must rank the same.
    bench_rank = sorted(BENCH_SIZES, key=BENCH_SIZES.get)
    paper_rank = sorted(BENCH_SIZES, key=PAPER_SIZES.get)
    assert bench_rank == paper_rank

    # PIPE carries all three pattern families.
    pipe = next(row for row in rows if row["name"] == "PIPE")
    assert set(pipe["markers"]) == {"BEND", "VALVE", "TEE"}
    assert all(count >= 2 for count in pipe["markers"].values())

    # UCR mixes dense and sparse windows (needed by Experiment 2).
    ucr = load_dataset("UCR", size=BENCH_SIZES["UCR"], seed=0)
    densities = window_densities(ucr.values, 32, 4)
    assert densities.max() > 50 * max(1.0, np.quantile(densities, 0.1))
