"""Table 3: experimental parameters and their values.

Echoes the scaled parameter grid the benchmarks run under and verifies
that the library defaults line up with the paper's setup: 4 KB pages,
LRU replacement, default buffer 5 %, warping width 5 % of Len(Q),
alpha=1 / beta=0 / h=blocking-factor for RU-COST, 0.5 % deferred
budget.
"""

from benchmarks.conftest import (
    BUFFER_DEFAULT,
    K_DEFAULT,
    K_RANGE,
    LEN_Q,
    OMEGA,
    record,
)
from repro.api import SubsequenceDatabase
from repro.engines.base import EngineConfig
from repro.engines.cost_density import CostDensityConfig
from repro.storage.page import PAGE_SIZE_DEFAULT


def build_table():
    return [
        ("k", K_DEFAULT, f"{K_RANGE[0]} ~ {K_RANGE[-1]}"),
        ("Buffer size", f"{BUFFER_DEFAULT:.0%}", "1% ~ 10%"),
        ("Len(Q)", LEN_Q, "128, 192, 256  (paper: 256, 384, 512)"),
        ("omega", OMEGA, "16, 32, 64  (paper: 32, 64, 128)"),
        ("Page size", PAGE_SIZE_DEFAULT, "fixed (as in the paper)"),
        ("rho", "5% of Len(Q)", "fixed (as in the paper)"),
    ]


def test_table3_parameters(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    header = f"{'Parameter':>12s} {'Default':>14s}   Range"
    lines = [
        "Table 3 — experimental parameters (scaled values)",
        header,
        "-" * 60,
    ]
    for name, default, value_range in table:
        lines.append(f"{name:>12s} {str(default):>14s}   {value_range}")
    record("table3_parameters", "\n".join(lines))

    # Library defaults match the paper's setup.
    assert PAGE_SIZE_DEFAULT == 4096
    db = SubsequenceDatabase()
    assert db.omega == 64  # paper's unscaled default window size
    assert db.buffer_fraction == 0.05
    config = EngineConfig(k=K_DEFAULT, rho=int(0.05 * LEN_Q))
    assert config.deferred_fraction == 0.005  # 0.5% deferred budget
    cost = CostDensityConfig()
    assert cost.alpha == 1.0 and cost.beta == 0.0
    assert cost.lookahead_h is None  # blocking factor
