"""Experiment 3 / Figure 14: effect of the buffer size.

Sweeps the LRU buffer from 1 % to 10 % of the database (Table 3's
range) on UCR with both query sets.

Paper shapes asserted:
* SeqScan's cost is flat across buffer sizes (it scans sequentially
  with no reuse);
* the buffer-based algorithms improve (weakly) with more buffer;
* the deferred ranked-union engines already perform well at the
  smallest buffer — the paper's "most desirable characteristic in the
  large database and multi-user environment".
"""

from benchmarks.conftest import K_DEFAULT, LEN_Q, NUM_QUERIES, record
from repro.bench import format_series_table
from repro.bench.harness import DEFERRED_LINEUP

BUFFER_RANGE = (0.01, 0.025, 0.05, 0.10)


def run_sweep(harness, queries):
    rows = {}
    for fraction in BUFFER_RANGE:
        rows[f"{fraction:.1%}"] = harness.run_lineup(
            DEFERRED_LINEUP,
            queries,
            k=K_DEFAULT,
            buffer_fraction=fraction,
        )
    harness.db.resize_buffer(0.05)  # restore the default for later tests
    return rows


def test_fig14a_buffer_size_regular(benchmark, ucr_harness):
    queries = ucr_harness.regular_queries(length=LEN_Q, count=NUM_QUERIES)
    rows = benchmark.pedantic(
        lambda: run_sweep(ucr_harness, queries), rounds=1, iterations=1
    )
    record(
        "fig14_buffer_size",
        format_series_table(
            "Fig 14(a) — UCR-REGULAR: wall clock time (modeled, s) by "
            "buffer size",
            "buffer",
            rows,
            "modeled_time_s",
        )
        + "\n\n"
        + format_series_table(
            "Fig 14(a') — UCR-REGULAR: page accesses by buffer size",
            "buffer",
            rows,
            "page_accesses",
        ),
    )
    _assert_shapes(rows)


def test_fig14b_buffer_size_dense(benchmark, ucr_harness):
    queries = ucr_harness.dense_queries(length=LEN_Q, count=NUM_QUERIES)
    rows = benchmark.pedantic(
        lambda: run_sweep(ucr_harness, queries), rounds=1, iterations=1
    )
    record(
        "fig14_buffer_size",
        format_series_table(
            "Fig 14(b) — UCR-DENSE: wall clock time (modeled, s) by "
            "buffer size",
            "buffer",
            rows,
            "modeled_time_s",
        ),
    )
    _assert_shapes(rows)


def _assert_shapes(rows):
    fractions = list(rows)
    # SeqScan flat: identical page counts at every buffer size.
    seq_pages = [rows[f]["SeqScan"].page_accesses for f in fractions]
    assert max(seq_pages) - min(seq_pages) <= 1
    # Buffer-based engines: the largest buffer needs no more pages than
    # the smallest (weak monotonicity, as in the paper's "slightly
    # decreases").
    for label in ("HLMJ(D)", "RU(D)", "RU-COST(D)"):
        assert (
            rows[fractions[-1]][label].page_accesses
            <= rows[fractions[0]][label].page_accesses * 1.05
        ), label
    # RU-COST(D) already beats HLMJ(D) at the smallest buffer.
    small = fractions[0]
    assert (
        rows[small]["RU-COST(D)"].candidates
        <= rows[small]["HLMJ(D)"].candidates
    )
