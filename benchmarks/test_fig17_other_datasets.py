"""Experiment 5 / Figure 17: WALK, STOCK, and MUSIC by ``k``.

The paper reports that the trends on the remaining three datasets
mirror UCR-REGULAR (Fig. 11c): RU-COST(D) best, then RU(D), then
HLMJ(D), with SeqScan orders of magnitude behind at scale.

Asserted per dataset and per ``k``: RU-COST(D) needs no more
candidates than HLMJ(D), and beats SeqScan on modeled wall time at the
default ``k``.
"""

import pytest

from benchmarks.conftest import LEN_Q, NUM_QUERIES, record
from repro.bench import format_series_table, format_speedups
from repro.bench.harness import DEFERRED_LINEUP

K_RANGE_D = (5, 25, 50)
PANELS = {"WALK": "a", "STOCK": "b", "MUSIC": "c"}


def run_sweep(harness):
    queries = harness.regular_queries(length=LEN_Q, count=NUM_QUERIES)
    return {
        k: harness.run_lineup(DEFERRED_LINEUP, queries, k=k)
        for k in K_RANGE_D
    }


@pytest.mark.parametrize("dataset", ["WALK", "STOCK", "MUSIC"])
def test_fig17_other_datasets(benchmark, dataset, request):
    harness = request.getfixturevalue(f"{dataset.lower()}_harness")
    rows = benchmark.pedantic(
        lambda: run_sweep(harness), rounds=1, iterations=1
    )
    blocks = [
        format_series_table(
            f"Fig 17({PANELS[dataset]}) — {dataset}: wall clock time "
            "(modeled, s) by k",
            "k",
            rows,
            "modeled_time_s",
        ),
        format_series_table(
            f"Fig 17({PANELS[dataset]}') — {dataset}: candidates by k",
            "k",
            rows,
            "candidates",
        ),
        format_speedups(
            rows, "modeled_time_s", "RU-COST(D)", ["SeqScan", "HLMJ(D)"]
        ),
    ]
    record("fig17_other_datasets", "\n\n".join(blocks))

    for k, results in rows.items():
        assert (
            results["RU-COST(D)"].candidates
            <= results["HLMJ(D)"].candidates * 1.05
        ), f"{dataset} k={k}"
    defaults = rows[25]
    assert (
        defaults["RU-COST(D)"].modeled_time_s
        < defaults["SeqScan"].modeled_time_s
    ), dataset
