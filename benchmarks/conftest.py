"""Shared fixtures and helpers for the figure benchmarks.

Each ``test_figNN_*.py`` module regenerates one table or figure of the
paper's Section 6 on the scaled synthetic datasets (see DESIGN.md §4–5
for the substitution and scaling rules).  Benchmarks print the same
rows/series the paper plots and append them to
``benchmarks/results/<figure>.txt`` so EXPERIMENTS.md can quote them.

Scaling: lengths are halved relative to Table 3 (omega 64 -> 32,
Len(Q) 384 -> 192, ...) and dataset sizes are roughly 1/100 of Table 2,
preserving all ratios that matter for the shapes (windows per query,
disjoint windows per candidate, relative dataset sizes).

Set ``REPRO_BENCH_SCALE`` (default 1.0) to grow or shrink every dataset
size proportionally.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.bench import Harness

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Scaled stand-ins for Table 2's sizes (divided by ~100, ordering kept)
#: — PIPE largest, STOCK smallest.
BENCH_SIZES = {
    "UCR": int(128_000 * SCALE),
    "PIPE": int(160_000 * SCALE),
    "WALK": int(96_000 * SCALE),
    "STOCK": int(48_000 * SCALE),
    "MUSIC": int(144_000 * SCALE),
}

#: Scaled Table 3 defaults (paper values halved where length-like).
OMEGA = 32
FEATURES = 4
LEN_Q = 192
K_DEFAULT = 25
K_RANGE = (5, 10, 25, 50)
BUFFER_DEFAULT = 0.05
NUM_QUERIES = 3


def record(figure: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{figure}.txt"
    with open(path, "a") as handle:
        handle.write(text + "\n")


@pytest.fixture(scope="session")
def ucr_harness() -> Harness:
    return Harness(
        "UCR",
        size=BENCH_SIZES["UCR"],
        omega=OMEGA,
        features=FEATURES,
        seed=0,
        buffer_fraction=BUFFER_DEFAULT,
    )


@pytest.fixture(scope="session")
def pipe_harness() -> Harness:
    return Harness(
        "PIPE",
        size=BENCH_SIZES["PIPE"],
        omega=OMEGA,
        features=FEATURES,
        seed=0,
        buffer_fraction=BUFFER_DEFAULT,
    )


@pytest.fixture(scope="session")
def walk_harness() -> Harness:
    return Harness(
        "WALK",
        size=BENCH_SIZES["WALK"],
        omega=OMEGA,
        features=FEATURES,
        seed=0,
        buffer_fraction=BUFFER_DEFAULT,
    )


@pytest.fixture(scope="session")
def stock_harness() -> Harness:
    return Harness(
        "STOCK",
        size=BENCH_SIZES["STOCK"],
        omega=OMEGA,
        features=FEATURES,
        seed=0,
        buffer_fraction=BUFFER_DEFAULT,
    )


@pytest.fixture(scope="session")
def music_harness() -> Harness:
    return Harness(
        "MUSIC",
        size=BENCH_SIZES["MUSIC"],
        omega=OMEGA,
        features=FEATURES,
        seed=0,
        buffer_fraction=BUFFER_DEFAULT,
    )
